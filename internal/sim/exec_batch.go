package sim

import (
	"essent/internal/bits"
	"essent/pkg/simrt"
)

// batchCtx is one evaluation agent's private state: the dispatcher owns
// ctx[0], each pool worker its own. The scalar shadow machine carries a
// private value table (constants pre-materialized) used to run signed
// and wide instructions one lane at a time, and to format printf
// arguments. Per-lane counters and check errors accrue here so that
// concurrent agents never share a written cacheline; BatchCCSS merges
// them at well-defined points (stats lazily in LaneStats, errors at the
// cycle boundary, wakes and register marks at the spec boundary).
type batchCtx struct {
	b  *BatchCCSS
	sm *machine

	// pt aliases the engine's shared packed bit-parallel table (one
	// uint64 per packed slot; bit l is lane l's value). Slots are
	// persistently coherent engine state maintained at the writer (see
	// pack.go); packed partitions are single-owner under the pool
	// (packPlan.partPacked), so the shared words are race-free.
	pt []uint64
	// oldSlot buffers pre-evaluation slot words of the partition's
	// slot-compared outputs (BatchCCSS.outSlot), replacing the lane-major
	// old-value row copy for elided-row packed destinations.
	oldSlot []uint64

	// stack implements nested mux-shadow skips with per-lane masks.
	stack []batchFrame
	// lanesA serves the partition-level walk, lanesB the instruction
	// walk's mask changes (they nest, so they need distinct backing).
	lanesA [simrt.MaxLanes]int
	lanesB [simrt.MaxLanes]int

	stats [simrt.MaxLanes]Stats
	errs  [simrt.MaxLanes]error

	// cur is the partition this context is evaluating (panic context).
	cur int32

	// Buffered side effects for pooled specs (merged serially).
	wakes []laneWake
	regs  []laneReg
}

// batchFrame saves the enclosing lane mask across a skip span.
type batchFrame struct {
	end  int32
	mask simrt.LaneMask
}

type laneWake struct {
	q int32
	m simrt.LaneMask
}

type laneReg struct {
	ri int32
	m  simrt.LaneMask
}

func newBatchCtx(b *BatchCCSS) *batchCtx {
	base := b.base.machine
	mc := *base
	mc.t = append([]uint64(nil), base.t...)
	for i := range mc.scratch {
		mc.scratch[i] = make([]uint64, len(base.scratch[0]))
	}
	mc.stats = Stats{}
	mc.out = &batchWriter{b: b}
	c := &batchCtx{b: b, sm: &mc}
	if b.pp != nil {
		c.pt = b.pt
		maxOut := 0
		for pi := range b.base.parts {
			if n := len(b.base.parts[pi].outputs); n > maxOut {
				maxOut = n
			}
		}
		c.oldSlot = make([]uint64, maxOut)
	}
	return c
}

func (c *batchCtx) reset() {
	for l := range c.stats {
		c.stats[l] = Stats{}
		c.errs[l] = nil
	}
	c.wakes = c.wakes[:0]
	c.regs = c.regs[:0]
}

// evalPartBatch evaluates one partition for the lanes in em: save old
// outputs, run the instruction span, compare and wake per lane. With
// direct=false (pooled specs) wakes and register marks are buffered for
// the serial merge at the spec boundary.
func (b *BatchCCSS) evalPartBatch(c *batchCtx, pi int32, em simrt.LaneMask, direct bool) {
	part := &b.base.parts[pi]
	c.cur = pi
	L := b.L
	full := em == simrt.FullMask(L)
	lanes := em.Lanes(c.lanesA[:0])
	for _, l := range lanes {
		c.stats[l].PartEvals++
	}
	start, end := part.schedStart, part.schedEnd
	var oslots []int32
	if b.pp != nil {
		start, end = b.pranges[pi][0], b.pranges[pi][1]
		oslots = b.outSlot[pi]
	}
	for oi := range part.outputs {
		if oslots != nil && oslots[oi] >= 0 {
			// Slot-compared output: the packed word is the whole lane-major
			// old-value snapshot.
			c.oldSlot[oi] = b.pt[oslots[oi]]
			continue
		}
		o := &part.outputs[oi]
		for w := 0; w < int(o.words); w++ {
			src := b.bt[(int(o.off)+w)*L : (int(o.off)+w)*L+L]
			dst := b.oldVals[(int(o.oldOff)+w)*L : (int(o.oldOff)+w)*L+L]
			if full {
				copy(dst, src)
			} else {
				for _, l := range lanes {
					dst[l] = src[l]
				}
			}
		}
	}
	c.runRange(start, end, em)
	for oi := range part.outputs {
		o := &part.outputs[oi]
		var changed simrt.LaneMask
		if oslots != nil && oslots[oi] >= 0 {
			// Slot-compared output: one XOR replaces the per-lane row scan.
			// Bit l of the slot is lane l's value, so the diff word IS the
			// per-lane change mask (stale bits of inactive lanes masked out).
			changed = simrt.LaneMask(c.oldSlot[oi]^b.pt[oslots[oi]]) & em
			for _, l := range lanes {
				c.stats[l].OutputCompares++
			}
			if changed != 0 {
				for _, l := range changed.Lanes(c.lanesB[:0]) {
					c.stats[l].SignalChanges++
					c.stats[l].Wakes += uint64(len(o.consumers))
				}
			}
		} else if o.words == 1 {
			// Hot shape: one-word output. Scan the whole row branch-free
			// (stale old values of inactive lanes are masked back out),
			// then credit stats per active lane.
			cur := b.bt[int(o.off)*L : int(o.off)*L+L]
			old := b.oldVals[int(o.oldOff)*L : int(o.oldOff)*L+L]
			old = old[:len(cur)]
			for l := range cur {
				if cur[l] != old[l] {
					changed |= 1 << uint(l)
				}
			}
			changed &= em
			for _, l := range lanes {
				c.stats[l].OutputCompares++
			}
			if changed != 0 {
				for _, l := range changed.Lanes(c.lanesB[:0]) {
					c.stats[l].SignalChanges++
					c.stats[l].Wakes += uint64(len(o.consumers))
				}
			}
		} else {
			for _, l := range lanes {
				c.stats[l].OutputCompares++
				for w := 0; w < int(o.words); w++ {
					if b.bt[(int(o.off)+w)*L+l] != b.oldVals[(int(o.oldOff)+w)*L+l] {
						changed |= 1 << uint(l)
						c.stats[l].SignalChanges++
						c.stats[l].Wakes += uint64(len(o.consumers))
						break
					}
				}
			}
		}
		if changed != 0 {
			if direct {
				for _, q := range o.consumers {
					b.wake(q, changed)
				}
			} else {
				for _, q := range o.consumers {
					c.wakes = append(c.wakes, laneWake{q: q, m: changed})
				}
			}
		}
	}
	if len(part.regs) > 0 {
		if direct {
			for _, ri := range part.regs {
				if b.regMask[ri] == 0 {
					b.dirtyRegs = append(b.dirtyRegs, ri)
				}
				b.regMask[ri] |= em
			}
		} else {
			for _, ri := range part.regs {
				c.regs = append(c.regs, laneReg{ri: ri, m: em})
			}
		}
	}
}

// runRange executes schedule entries in [start, end) for the lanes in
// mask. Skip entries split the mask per lane: lanes whose selector takes
// the guarded arm descend into the cone, the rest rejoin at its end (the
// saved mask is restored from the frame stack — spans are well nested).
// Ops are counted run-length style: a pending count accumulates while
// the mask is stable and is flushed to each member lane's counter when
// it changes, so the per-instruction cost stays one add.
func (c *batchCtx) runRange(start, end int32, mask simrt.LaneMask) {
	b := c.b
	L := b.L
	bt := b.bt
	sched := b.sched
	instrs := b.base.machine.instrs
	stack := c.stack[:0]
	lanes := mask.Lanes(c.lanesB[:0])
	var pendOps uint64
	flush := func() {
		if pendOps == 0 {
			return
		}
		for _, l := range lanes {
			c.stats[l].OpsEvaluated += pendOps
		}
		pendOps = 0
	}
	for i := start; i < end; {
		for len(stack) > 0 && stack[len(stack)-1].end == i {
			flush()
			mask = stack[len(stack)-1].mask
			stack = stack[:len(stack)-1]
			lanes = mask.Lanes(c.lanesB[:0])
		}
		e := &sched[i]
		if e.kind == seInstr {
			pendOps += c.execBatch(&instrs[e.idx], lanes)
			i++
			continue
		}
		if e.kind == sePacked {
			pendOps += c.execBatchPacked(&b.pp.pins[e.idx], lanes, mask)
			i++
			continue
		}
		switch e.kind {
		case seSkipIfZero, seSkipIfNonzero:
			selRow := bt[int(e.idx)*L : int(e.idx)*L+L]
			var nz simrt.LaneMask
			if len(lanes) == L {
				for l := range selRow {
					if selRow[l] != 0 {
						nz |= 1 << uint(l)
					}
				}
			} else {
				for _, l := range lanes {
					if selRow[l] != 0 {
						nz |= 1 << uint(l)
					}
				}
			}
			cone := mask & nz
			if e.kind == seSkipIfNonzero {
				cone = mask &^ nz
			}
			if cone == 0 {
				i += 1 + e.n
				continue
			}
			if cone != mask {
				flush()
				stack = append(stack, batchFrame{end: i + 1 + e.n, mask: mask})
				mask = cone
				lanes = mask.Lanes(c.lanesB[:0])
			}
		case seSkipIfZeroF, seSkipIfNonzeroF:
			in := &instrs[e.idx]
			pendOps += c.execBatch(in, lanes)
			dstRow := bt[int(in.dst)*L : int(in.dst)*L+L]
			var nz simrt.LaneMask
			if len(lanes) == L {
				for l := range dstRow {
					if dstRow[l] != 0 {
						nz |= 1 << uint(l)
					}
				}
			} else {
				for _, l := range lanes {
					if dstRow[l] != 0 {
						nz |= 1 << uint(l)
					}
				}
			}
			cone := mask & nz
			if e.kind == seSkipIfNonzeroF {
				cone = mask &^ nz
			}
			if cone == 0 {
				i += 1 + e.n
				continue
			}
			if cone != mask {
				flush()
				stack = append(stack, batchFrame{end: i + 1 + e.n, mask: mask})
				mask = cone
				lanes = mask.Lanes(c.lanesB[:0])
			}
		case seDisplay:
			c.runDisplayBatch(e.idx, lanes)
		case seCheck:
			c.runCheckBatch(e.idx, lanes)
		case seMemWrite:
			c.captureMemWriteBatch(e.idx, lanes)
		}
		i++
	}
	flush()
	c.stack = stack[:0]
}

// execBatch evaluates one instruction for the given lanes and returns
// its op weight (2 for fused superinstructions). Memory reads are
// intercepted for every dispatch kind — they must hit the lane-local
// batch memories, not the shadow machine's.
func (c *batchCtx) execBatch(in *instr, lanes []int) uint64 {
	if in.code == IMemRead {
		c.execBatchMemRead(in, lanes)
		return 1
	}
	switch in.kind {
	case kNarrow:
		c.execBatchNarrow(in, lanes)
		return 1
	case kFused:
		c.execBatchFused(in, lanes)
		return 2
	default:
		c.execLaneScalar(in, lanes)
		return 1
	}
}

// execBatchMemRead reads each lane's copy of the memory into the lane's
// destination row (same bounds behavior as the scalar kernels: out of
// range reads zero).
func (c *batchCtx) execBatchMemRead(in *instr, lanes []int) {
	b := c.b
	L := b.L
	ms := &b.mems[in.mem]
	nw := int(ms.nw)
	aRow := b.bt[int(in.a)*L:]
	for _, l := range lanes {
		addr := aRow[l]
		if addr < uint64(ms.depth) {
			base := int(addr) * nw
			for k := 0; k < nw; k++ {
				b.bt[(int(in.dst)+k)*L+l] = ms.words[(base+k)*L+l]
			}
		} else {
			for k := 0; k < nw; k++ {
				b.bt[(int(in.dst)+k)*L+l] = 0
			}
		}
	}
}

// execLaneScalar runs a signed or wide instruction one lane at a time
// through the scalar shadow machine: gather the operand slots into the
// shadow table (same offsets, so the instruction runs unmodified),
// evaluate, scatter the result row back.
func (c *batchCtx) execLaneScalar(in *instr, lanes []int) {
	b := c.b
	sm := c.sm
	L := b.L
	dwWords := bits.Words(int(in.dw))
	for _, l := range lanes {
		if in.a >= 0 {
			simrt.GatherLane(sm.t, b.bt, int(in.a), bits.Words(int(in.aw)), L, l)
		}
		if in.b >= 0 {
			simrt.GatherLane(sm.t, b.bt, int(in.b), bits.Words(int(in.bw)), L, l)
		}
		if in.c >= 0 {
			simrt.GatherLane(sm.t, b.bt, int(in.c), bits.Words(int(in.cw)), L, l)
		}
		if in.kind == kSigned {
			sm.execSigned(in)
		} else {
			sm.execWide(in)
		}
		simrt.ScatterLane(b.bt, sm.t, int(in.dst), dwWords, L, l)
	}
}

// execBatchNarrow is the hot path: the batched form of execNarrow, one
// tight loop over the active lanes of each row. Semantics per lane must
// match execNarrow bit for bit. When every lane is active (the common
// case for lock-step batches) the dense variant runs instead: iterating
// the rows directly lets the compiler drop the lane indirection and the
// bounds checks.
func (c *batchCtx) execBatchNarrow(in *instr, lanes []int) {
	bt := c.b.bt
	L := c.b.L
	d := bt[int(in.dst)*L : int(in.dst)*L+L]
	var a, bb, cc []uint64
	if in.a >= 0 {
		a = bt[int(in.a)*L : int(in.a)*L+L]
	}
	if in.b >= 0 {
		bb = bt[int(in.b)*L : int(in.b)*L+L]
	}
	if in.c >= 0 {
		cc = bt[int(in.c)*L : int(in.c)*L+L]
	}
	execRowNarrow(in, lanes, d, a, bb, cc)
}

// execRowNarrow evaluates one narrow instruction over pre-sliced operand
// rows (each len == lane count) for the given active lanes. Shared
// between the batch engine (rows sliced from bt by signal offset) and the
// instance-vectorized engine (rows sliced from a group's slot buffer).
// Semantics per lane must match execNarrow bit for bit.
func execRowNarrow(in *instr, lanes []int, d, a, bb, cc []uint64) {
	if len(lanes) == len(d) {
		execRowNarrowDense(in, d, a, bb, cc)
		return
	}
	dm := in.dmask
	switch in.code {
	case ICopy:
		for _, l := range lanes {
			d[l] = a[l] & dm
		}
	case IMux:
		for _, l := range lanes {
			if a[l] != 0 {
				d[l] = bb[l] & dm
			} else {
				d[l] = cc[l] & dm
			}
		}
	case IAdd:
		for _, l := range lanes {
			d[l] = (a[l] + bb[l]) & dm
		}
	case ISub:
		for _, l := range lanes {
			d[l] = (a[l] - bb[l]) & dm
		}
	case IMul:
		for _, l := range lanes {
			d[l] = (a[l] * bb[l]) & dm
		}
	case IDiv:
		for _, l := range lanes {
			if bb[l] == 0 {
				d[l] = 0
			} else {
				d[l] = (a[l] / bb[l]) & dm
			}
		}
	case IRem:
		for _, l := range lanes {
			if bb[l] == 0 {
				d[l] = a[l] & dm
			} else {
				d[l] = (a[l] % bb[l]) & dm
			}
		}
	case ILt:
		for _, l := range lanes {
			d[l] = b2u(a[l] < bb[l])
		}
	case ILeq:
		for _, l := range lanes {
			d[l] = b2u(a[l] <= bb[l])
		}
	case IGt:
		for _, l := range lanes {
			d[l] = b2u(a[l] > bb[l])
		}
	case IGeq:
		for _, l := range lanes {
			d[l] = b2u(a[l] >= bb[l])
		}
	case IEq:
		for _, l := range lanes {
			d[l] = b2u(a[l] == bb[l])
		}
	case INeq:
		for _, l := range lanes {
			d[l] = b2u(a[l] != bb[l])
		}
	case IShl:
		for _, l := range lanes {
			d[l] = (a[l] << uint(in.p0)) & dm
		}
	case IShr:
		for _, l := range lanes {
			d[l] = (a[l] >> uint(in.p0)) & dm
		}
	case IDshl:
		for _, l := range lanes {
			d[l] = (a[l] << uint(bb[l])) & dm
		}
	case IDshr:
		for _, l := range lanes {
			d[l] = (a[l] >> uint(bb[l])) & dm
		}
	case INeg:
		for _, l := range lanes {
			d[l] = (-a[l]) & dm
		}
	case INot:
		for _, l := range lanes {
			d[l] = (^a[l]) & dm
		}
	case IAnd:
		for _, l := range lanes {
			d[l] = a[l] & bb[l]
		}
	case IOr:
		for _, l := range lanes {
			d[l] = a[l] | bb[l]
		}
	case IXor:
		for _, l := range lanes {
			d[l] = (a[l] ^ bb[l]) & dm
		}
	case IAndr:
		full := bits.Mask64(^uint64(0), int(in.aw))
		for _, l := range lanes {
			d[l] = b2u(a[l] == full)
		}
	case IOrr:
		for _, l := range lanes {
			d[l] = b2u(a[l] != 0)
		}
	case IXorr:
		for _, l := range lanes {
			d[l] = uint64(popcount(a[l])) & 1
		}
	case ICat:
		for _, l := range lanes {
			d[l] = (a[l]<<uint(in.bw) | bb[l]) & dm
		}
	case IBits:
		for _, l := range lanes {
			d[l] = (a[l] >> uint(in.p1)) & dm
		}
	case IHead:
		sh := uint(in.aw - in.p0)
		for _, l := range lanes {
			d[l] = a[l] >> sh
		}
	case ITail:
		for _, l := range lanes {
			d[l] = a[l] & dm
		}
	}
}

// execRowNarrowDense is execRowNarrow with every lane active: plain
// row loops, no lane indirection. The re-slices pin the operand lengths
// to len(d) so the per-element bounds checks vanish.
func execRowNarrowDense(in *instr, d, a, bb, cc []uint64) {
	if a != nil {
		a = a[:len(d)]
	}
	if bb != nil {
		bb = bb[:len(d)]
	}
	if cc != nil {
		cc = cc[:len(d)]
	}
	dm := in.dmask
	switch in.code {
	case ICopy:
		for l := range d {
			d[l] = a[l] & dm
		}
	case IMux:
		for l := range d {
			if a[l] != 0 {
				d[l] = bb[l] & dm
			} else {
				d[l] = cc[l] & dm
			}
		}
	case IAdd:
		for l := range d {
			d[l] = (a[l] + bb[l]) & dm
		}
	case ISub:
		for l := range d {
			d[l] = (a[l] - bb[l]) & dm
		}
	case IMul:
		for l := range d {
			d[l] = (a[l] * bb[l]) & dm
		}
	case IDiv:
		for l := range d {
			if bb[l] == 0 {
				d[l] = 0
			} else {
				d[l] = (a[l] / bb[l]) & dm
			}
		}
	case IRem:
		for l := range d {
			if bb[l] == 0 {
				d[l] = a[l] & dm
			} else {
				d[l] = (a[l] % bb[l]) & dm
			}
		}
	case ILt:
		for l := range d {
			d[l] = b2u(a[l] < bb[l])
		}
	case ILeq:
		for l := range d {
			d[l] = b2u(a[l] <= bb[l])
		}
	case IGt:
		for l := range d {
			d[l] = b2u(a[l] > bb[l])
		}
	case IGeq:
		for l := range d {
			d[l] = b2u(a[l] >= bb[l])
		}
	case IEq:
		for l := range d {
			d[l] = b2u(a[l] == bb[l])
		}
	case INeq:
		for l := range d {
			d[l] = b2u(a[l] != bb[l])
		}
	case IShl:
		for l := range d {
			d[l] = (a[l] << uint(in.p0)) & dm
		}
	case IShr:
		for l := range d {
			d[l] = (a[l] >> uint(in.p0)) & dm
		}
	case IDshl:
		for l := range d {
			d[l] = (a[l] << uint(bb[l])) & dm
		}
	case IDshr:
		for l := range d {
			d[l] = (a[l] >> uint(bb[l])) & dm
		}
	case INeg:
		for l := range d {
			d[l] = (-a[l]) & dm
		}
	case INot:
		for l := range d {
			d[l] = (^a[l]) & dm
		}
	case IAnd:
		for l := range d {
			d[l] = a[l] & bb[l]
		}
	case IOr:
		for l := range d {
			d[l] = a[l] | bb[l]
		}
	case IXor:
		for l := range d {
			d[l] = (a[l] ^ bb[l]) & dm
		}
	case IAndr:
		full := bits.Mask64(^uint64(0), int(in.aw))
		for l := range d {
			d[l] = b2u(a[l] == full)
		}
	case IOrr:
		for l := range d {
			d[l] = b2u(a[l] != 0)
		}
	case IXorr:
		for l := range d {
			d[l] = uint64(popcount(a[l])) & 1
		}
	case ICat:
		for l := range d {
			d[l] = (a[l]<<uint(in.bw) | bb[l]) & dm
		}
	case IBits:
		for l := range d {
			d[l] = (a[l] >> uint(in.p1)) & dm
		}
	case IHead:
		sh := uint(in.aw - in.p0)
		for l := range d {
			d[l] = a[l] >> sh
		}
	case ITail:
		for l := range d {
			d[l] = a[l] & dm
		}
	}
}

// execBatchFused is the batched form of execFused.
func (c *batchCtx) execBatchFused(in *instr, lanes []int) {
	bt := c.b.bt
	L := c.b.L
	d := bt[int(in.dst)*L : int(in.dst)*L+L]
	a := bt[int(in.a)*L : int(in.a)*L+L]
	bb := bt[int(in.b)*L : int(in.b)*L+L]
	var cc, mm []uint64
	if in.code == IFCmpMux {
		cc = bt[int(in.c)*L : int(in.c)*L+L]
		mm = bt[int(in.mem)*L : int(in.mem)*L+L]
	}
	execRowFused(in, lanes, d, a, bb, cc, mm)
}

// execRowFused evaluates one fused superinstruction over pre-sliced
// operand rows for the given active lanes; cc/mm are the true/false ways
// of IFCmpMux (nil otherwise). Shared with the instance-vectorized
// engine like execRowNarrow.
func execRowFused(in *instr, lanes []int, d, a, bb, cc, mm []uint64) {
	if len(lanes) == len(d) {
		execRowFusedDense(in, d, a, bb, cc, mm)
		return
	}
	dm := in.dmask
	switch in.code {
	case IFCmpMux:
		pick := func(l int, sel bool) {
			if sel {
				d[l] = cc[l] & dm
			} else {
				d[l] = mm[l] & dm
			}
		}
		switch ICode(in.p0) {
		case IEq:
			for _, l := range lanes {
				pick(l, a[l] == bb[l])
			}
		case INeq:
			for _, l := range lanes {
				pick(l, a[l] != bb[l])
			}
		case ILt:
			for _, l := range lanes {
				pick(l, a[l] < bb[l])
			}
		case ILeq:
			for _, l := range lanes {
				pick(l, a[l] <= bb[l])
			}
		case IGt:
			for _, l := range lanes {
				pick(l, a[l] > bb[l])
			}
		default: // IGeq
			for _, l := range lanes {
				pick(l, a[l] >= bb[l])
			}
		}
	case IFNotAnd:
		for _, l := range lanes {
			d[l] = ^a[l] & bb[l] & dm
		}
	case IFAddTail:
		for _, l := range lanes {
			d[l] = (a[l] + bb[l]) & dm
		}
	case IFSubTail:
		for _, l := range lanes {
			d[l] = (a[l] - bb[l]) & dm
		}
	}
}

// execRowFusedDense is execRowFused with every lane active.
func execRowFusedDense(in *instr, d, a, bb, cc, mm []uint64) {
	a = a[:len(d)]
	bb = bb[:len(d)]
	dm := in.dmask
	switch in.code {
	case IFCmpMux:
		cc = cc[:len(d)]
		mm = mm[:len(d)]
		pick := func(l int, sel bool) {
			if sel {
				d[l] = cc[l] & dm
			} else {
				d[l] = mm[l] & dm
			}
		}
		switch ICode(in.p0) {
		case IEq:
			for l := range d {
				pick(l, a[l] == bb[l])
			}
		case INeq:
			for l := range d {
				pick(l, a[l] != bb[l])
			}
		case ILt:
			for l := range d {
				pick(l, a[l] < bb[l])
			}
		case ILeq:
			for l := range d {
				pick(l, a[l] <= bb[l])
			}
		case IGt:
			for l := range d {
				pick(l, a[l] > bb[l])
			}
		default: // IGeq
			for l := range d {
				pick(l, a[l] >= bb[l])
			}
		}
	case IFNotAnd:
		for l := range d {
			d[l] = ^a[l] & bb[l] & dm
		}
	case IFAddTail:
		for l := range d {
			d[l] = (a[l] + bb[l]) & dm
		}
	case IFSubTail:
		for l := range d {
			d[l] = (a[l] - bb[l]) & dm
		}
	}
}

// evalPackedWord evaluates one packed compute op over whole words: bit
// l of every operand is lane l's 1-bit value, so a single word op
// evaluates all ≤64 lanes at once. Out-of-mask bits compute garbage
// from garbage, which is harmless — each lane's bit depends only on
// that lane's operand bits, and untrusted bits are never unpacked.
func evalPackedWord(pt []uint64, p *pinstr) uint64 {
	switch p.code {
	case pCopy:
		return pt[p.a]
	case pNot:
		return ^pt[p.a]
	case pAnd:
		return pt[p.a] & pt[p.b]
	case pOr:
		return pt[p.a] | pt[p.b]
	case pXor:
		return pt[p.a] ^ pt[p.b]
	case pEq:
		return ^(pt[p.a] ^ pt[p.b])
	case pNeq:
		return pt[p.a] ^ pt[p.b]
	case pLt:
		return ^pt[p.a] & pt[p.b]
	case pLeq:
		return ^pt[p.a] | pt[p.b]
	case pGt:
		return pt[p.a] &^ pt[p.b]
	case pGeq:
		return pt[p.a] | ^pt[p.b]
	case pMux:
		s := pt[p.a]
		return s&pt[p.b] | ^s&pt[p.c]
	case pNotAnd:
		return ^pt[p.a] & pt[p.b]
	case pCmpMux:
		a, b := pt[p.a], pt[p.b]
		var s uint64
		switch p.cmp {
		case IEq:
			s = ^(a ^ b)
		case INeq:
			s = a ^ b
		case ILt:
			s = ^a & b
		case ILeq:
			s = ^a | b
		case IGt:
			s = a &^ b
		default: // IGeq
			s = a | ^b
		}
		return s&pt[p.c] | ^s&pt[p.m]
	}
	return 0
}

// execBatchPacked runs one packed step for the active lanes and returns
// its op weight. Gathers (pPack) merge exactly the active lanes' row
// bits into the slot (inactive lanes' bits keep their coherent values).
// Compute ops write the whole word: an inactive live lane's operand
// bits are unchanged since its last evaluation, so the maskless
// recompute reproduces its bits — persistent coherence is maintained
// for free, except for elided-register storage (maskedDst), whose
// self-referential update must not advance idle lanes. Scatters
// (row-required destinations) write only active lanes' rows so frozen
// and idle lanes' architectural rows stay untouched.
func (c *batchCtx) execBatchPacked(p *pinstr, lanes []int, mask simrt.LaneMask) uint64 {
	b := c.b
	L := b.L
	if len(lanes) == L {
		return c.execBatchPackedDense(p)
	}
	pt := c.pt
	if p.code == pPack {
		row := b.bt[int(p.rowOff)*L : int(p.rowOff)*L+L]
		w := pt[p.dst]
		for _, l := range lanes {
			w = w&^(1<<uint(l)) | (row[l]&1)<<uint(l)
		}
		pt[p.dst] = w
		return 0
	}
	v := evalPackedWord(pt, p)
	if p.maskedDst {
		m := uint64(mask)
		pt[p.dst] = pt[p.dst]&^m | v&m
	} else {
		pt[p.dst] = v
	}
	if p.rowOff >= 0 {
		d := b.bt[int(p.rowOff)*L : int(p.rowOff)*L+L]
		for _, l := range lanes {
			d[l] = v >> uint(l) & 1
		}
	}
	return uint64(p.weight)
}

// execBatchPackedDense is execBatchPacked with every lane active: the
// gather transposes the full row, the scatter broadcasts every bit.
func (c *batchCtx) execBatchPackedDense(p *pinstr) uint64 {
	b := c.b
	L := b.L
	pt := c.pt
	if p.code == pPack {
		row := b.bt[int(p.rowOff)*L : int(p.rowOff)*L+L]
		var w uint64
		for l, x := range row {
			w |= (x & 1) << uint(l)
		}
		pt[p.dst] = w
		return 0
	}
	v := evalPackedWord(pt, p)
	pt[p.dst] = v
	if p.rowOff >= 0 {
		d := b.bt[int(p.rowOff)*L : int(p.rowOff)*L+L]
		for l := range d {
			d[l] = v >> uint(l) & 1
		}
	}
	return uint64(p.weight)
}

// runDisplayBatch formats an enabled printf for each active lane: the
// argument operands are gathered into the shadow table and rendered
// through the shared formatter (output serialized by batchWriter).
func (c *batchCtx) runDisplayBatch(i int32, lanes []int) {
	b := c.b
	sm := c.sm
	d := &sm.displays[i]
	L := b.L
	enRow := b.bt[int(d.en.off)*L:]
	for _, l := range lanes {
		if enRow[l]&1 != 1 {
			continue
		}
		for _, o := range d.args {
			simrt.GatherLane(sm.t, b.bt, int(o.off), bits.Words(int(o.w)), L, l)
		}
		sm.printFormatted(d)
	}
}

// runCheckBatch evaluates a stop/assert per lane. The first error of a
// lane's cycle wins (the scalar engines' evalErr guard, applied per
// lane); errors surface at the cycle boundary and freeze the lane.
func (c *batchCtx) runCheckBatch(i int32, lanes []int) {
	b := c.b
	ck := &b.base.machine.checks[i]
	L := b.L
	enRow := b.bt[int(ck.en.off)*L:]
	predRow := b.bt[int(ck.pred.off)*L:]
	for _, l := range lanes {
		if enRow[l]&1 == 0 || c.errs[l] != nil {
			continue
		}
		if ck.stop {
			c.errs[l] = &StopError{Code: ck.code, Cycle: b.cycle}
		} else if predRow[l]&1 == 0 {
			c.errs[l] = &AssertError{Msg: ck.msg, Cycle: b.cycle}
		}
	}
}

// captureMemWriteBatch buffers each active lane's pending write (applied
// per lane at commit so reads this cycle see pre-edge contents).
func (c *batchCtx) captureMemWriteBatch(i int32, lanes []int) {
	b := c.b
	w := &b.base.machine.memWrites[i]
	mw := &b.memWr[i]
	L := b.L
	enRow := b.bt[int(w.en.off)*L:]
	maskRow := b.bt[int(w.mask.off)*L:]
	addrRow := b.bt[int(w.addr.off)*L:]
	dataOff := int(w.data.off)
	for _, l := range lanes {
		if enRow[l]&1 == 0 || maskRow[l]&1 == 0 {
			mw.valid[l] = 0
			continue
		}
		mw.valid[l] = 1
		mw.addr[l] = addrRow[l]
		for k := 0; k < mw.dataWords; k++ {
			mw.data[k*L+l] = b.bt[(dataOff+k)*L+l]
		}
	}
}
