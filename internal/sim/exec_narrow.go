package sim

import (
	stdbits "math/bits"

	"essent/internal/bits"
)

// execNarrow evaluates a single-word instruction whose operands carry no
// sign flags: every ext() of the general path is a compile-time no-op
// here, comparisons and shifts are plain unsigned machine ops, and the
// result mask is the precomputed in.dmask. This is the hot path — on the
// RISC-V SoC the overwhelming majority of instructions are narrow
// unsigned (addresses, control, ALU datapath).
//
// Semantics must match execSigned with sa=sb=sc=false bit for bit; the
// cross-engine equivalence fuzz and the ISA suite are the referee.
func (m *machine) execNarrow(in *instr) {
	t := m.t
	switch in.code {
	case ICopy:
		t[in.dst] = t[in.a] & in.dmask
	case IMux:
		if t[in.a] != 0 {
			t[in.dst] = t[in.b] & in.dmask
		} else {
			t[in.dst] = t[in.c] & in.dmask
		}
	case IMemRead:
		ms := &m.mems[in.mem]
		addr := t[in.a]
		if addr < uint64(ms.depth) {
			t[in.dst] = ms.words[int32(addr)*ms.nw]
		} else {
			t[in.dst] = 0
		}
	case IAdd:
		t[in.dst] = (t[in.a] + t[in.b]) & in.dmask
	case ISub:
		t[in.dst] = (t[in.a] - t[in.b]) & in.dmask
	case IMul:
		t[in.dst] = (t[in.a] * t[in.b]) & in.dmask
	case IDiv:
		b := t[in.b]
		if b == 0 {
			t[in.dst] = 0
		} else {
			t[in.dst] = (t[in.a] / b) & in.dmask
		}
	case IRem:
		b := t[in.b]
		if b == 0 {
			t[in.dst] = t[in.a] & in.dmask
		} else {
			t[in.dst] = (t[in.a] % b) & in.dmask
		}
	case ILt:
		t[in.dst] = b2u(t[in.a] < t[in.b])
	case ILeq:
		t[in.dst] = b2u(t[in.a] <= t[in.b])
	case IGt:
		t[in.dst] = b2u(t[in.a] > t[in.b])
	case IGeq:
		t[in.dst] = b2u(t[in.a] >= t[in.b])
	case IEq:
		t[in.dst] = b2u(t[in.a] == t[in.b])
	case INeq:
		t[in.dst] = b2u(t[in.a] != t[in.b])
	case IShl:
		t[in.dst] = (t[in.a] << uint(in.p0)) & in.dmask
	case IShr:
		t[in.dst] = (t[in.a] >> uint(in.p0)) & in.dmask
	case IDshl:
		t[in.dst] = (t[in.a] << uint(t[in.b])) & in.dmask
	case IDshr:
		t[in.dst] = (t[in.a] >> uint(t[in.b])) & in.dmask
	case INeg:
		t[in.dst] = (-t[in.a]) & in.dmask
	case INot:
		t[in.dst] = (^t[in.a]) & in.dmask
	case IAnd:
		t[in.dst] = t[in.a] & t[in.b]
	case IOr:
		t[in.dst] = t[in.a] | t[in.b]
	case IXor:
		t[in.dst] = (t[in.a] ^ t[in.b]) & in.dmask
	case IAndr:
		t[in.dst] = b2u(t[in.a] == bits.Mask64(^uint64(0), int(in.aw)))
	case IOrr:
		t[in.dst] = b2u(t[in.a] != 0)
	case IXorr:
		t[in.dst] = uint64(stdbits.OnesCount64(t[in.a])) & 1
	case ICat:
		t[in.dst] = (t[in.a]<<uint(in.bw) | t[in.b]) & in.dmask
	case IBits:
		t[in.dst] = (t[in.a] >> uint(in.p1)) & in.dmask
	case IHead:
		t[in.dst] = t[in.a] >> uint(in.aw-in.p0)
	case ITail:
		t[in.dst] = t[in.a] & in.dmask
	}
}

// execFused evaluates a superinstruction (two original operations per
// dispatch; callers account OpsEvaluated accordingly). All fused forms
// are narrow and unsigned by construction (fuse.go only pairs kNarrow
// instructions).
func (m *machine) execFused(in *instr) {
	t := m.t
	switch in.code {
	case IFCmpMux:
		var sel bool
		switch ICode(in.p0) {
		case IEq:
			sel = t[in.a] == t[in.b]
		case INeq:
			sel = t[in.a] != t[in.b]
		case ILt:
			sel = t[in.a] < t[in.b]
		case ILeq:
			sel = t[in.a] <= t[in.b]
		case IGt:
			sel = t[in.a] > t[in.b]
		default: // IGeq
			sel = t[in.a] >= t[in.b]
		}
		if sel {
			t[in.dst] = t[in.c] & in.dmask
		} else {
			t[in.dst] = t[in.mem] & in.dmask
		}
	case IFNotAnd:
		t[in.dst] = ^t[in.a] & t[in.b] & in.dmask
	case IFAddTail:
		t[in.dst] = (t[in.a] + t[in.b]) & in.dmask
	case IFSubTail:
		t[in.dst] = (t[in.a] - t[in.b]) & in.dmask
	}
}
