package sim

import (
	"essent/pkg/simrt"
)

// execGroup runs one class program over the group's slot-major row
// buffer for the given active lanes, mirroring the batch engine's
// mask-stack divergence handling (exec_batch.go runRange): a skip whose
// cone covers no active lane jumps, a partial cone pushes the outer
// mask and narrows, and the frame pops at the region end. Returns the
// op count (scalar runRange units: active lanes × weight, fused ops
// weigh 2) for Stats.OpsEvaluated.
//
// Safe to call concurrently for disjoint lane sets of the same group:
// every written buffer cell is indexed by an active lane, and the
// divergence scratch lives on this call's stack.
func execGroup(g *vecGroup, mask simrt.LaneMask, lanes []int) uint64 {
	L := g.lanes
	buf := g.buf
	prog := g.prog
	vin := g.vinstrs
	var ops uint64

	type frame struct {
		end  int32
		mask simrt.LaneMask
	}
	var stackArr [8]frame
	stack := stackArr[:0]
	var lanesArr [simrt.MaxLanes]int
	row := func(s int32) []uint64 {
		if s < 0 {
			return nil
		}
		return buf[int(s)*L : int(s)*L+L]
	}
	exec := func(in *instr) {
		if in.kind == kFused {
			var cc, mm []uint64
			if in.code == IFCmpMux {
				cc, mm = row(in.c), row(in.mem)
			}
			execRowFused(in, lanes, row(in.dst), row(in.a), row(in.b), cc, mm)
			ops += 2 * uint64(len(lanes))
			return
		}
		execRowNarrow(in, lanes, row(in.dst), row(in.a), row(in.b), row(in.c))
		ops += uint64(len(lanes))
	}

	end := int32(len(prog))
	for i := int32(0); i < end; {
		for len(stack) > 0 && stack[len(stack)-1].end == i {
			mask = stack[len(stack)-1].mask
			stack = stack[:len(stack)-1]
			lanes = mask.Lanes(lanesArr[:0])
		}
		e := &prog[i]
		if e.kind == seInstr {
			exec(&vin[e.idx])
			i++
			continue
		}
		var nz simrt.LaneMask
		skipZero := false
		switch e.kind {
		case seSkipIfZero, seSkipIfNonzero:
			selRow := buf[int(e.idx)*L : int(e.idx)*L+L]
			for _, l := range lanes {
				if selRow[l] != 0 {
					nz |= 1 << uint(l)
				}
			}
			skipZero = e.kind == seSkipIfZero
		case seSkipIfZeroF, seSkipIfNonzeroF:
			in := &vin[e.idx]
			exec(in)
			dstRow := buf[int(in.dst)*L : int(in.dst)*L+L]
			for _, l := range lanes {
				if dstRow[l] != 0 {
					nz |= 1 << uint(l)
				}
			}
			skipZero = e.kind == seSkipIfZeroF
		}
		cone := mask & nz
		if !skipZero {
			cone = mask &^ nz
		}
		if cone == 0 {
			i += 1 + e.n
			continue
		}
		if cone != mask {
			stack = append(stack, frame{end: i + 1 + e.n, mask: mask})
			mask = cone
			lanes = mask.Lanes(lanesArr[:0])
		}
		i++
	}
	return ops
}
