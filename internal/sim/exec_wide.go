package sim

import (
	"essent/internal/bits"
)

// execWide evaluates an instruction with any operand or result wider than
// 64 bits. Results are computed into scratch and copied out, so in-place
// register updates (dst aliasing an operand) are safe.
func (m *machine) execWide(in *instr) {
	dst := m.view(in.dst, in.dw)
	dwWords := len(dst)
	s0 := m.scratch[0][:dwWords]
	s1 := m.scratch[1][:dwWords]
	res := m.scratch[3][:dwWords]

	viewA := func() []uint64 { return m.view(in.a, in.aw) }
	viewB := func() []uint64 { return m.view(in.b, in.bw) }
	extA := func(buf []uint64) []uint64 {
		bits.ExtendInto(buf, viewA(), int(in.aw), in.sa)
		return buf
	}
	extB := func(buf []uint64) []uint64 {
		bits.ExtendInto(buf, viewB(), int(in.bw), in.sb)
		return buf
	}
	finish := func() {
		bits.MaskInto(res, int(in.dw))
		copy(dst, res)
	}

	switch in.code {
	case ICopy:
		bits.ExtendInto(res, viewA(), int(in.aw), in.sa)
		finish()
	case IMux:
		if m.t[in.a] != 0 {
			bits.ExtendInto(res, m.view(in.b, in.bw), int(in.bw), in.sb)
		} else {
			bits.ExtendInto(res, m.view(in.c, in.cw), int(in.cw), in.sc)
		}
		finish()
	case IMemRead:
		ms := &m.mems[in.mem]
		addr := m.t[in.a]
		if addr < uint64(ms.depth) {
			base := int32(addr) * ms.nw
			copy(dst, ms.words[base:base+ms.nw])
		} else {
			bits.Zero(dst)
		}
	case IAdd:
		bits.AddInto(res, extA(s0), extB(s1))
		finish()
	case ISub:
		bits.SubInto(res, extA(s0), extB(s1))
		finish()
	case IMul:
		bits.MulInto(res, extA(s0), extB(s1))
		finish()
	case IDiv:
		rem := m.scratch[2][:len(res)]
		if in.sa {
			bits.DivRemS(res, rem, viewA(), viewB(), int(in.aw), int(in.bw))
		} else {
			bits.DivRemU(res, rem, viewA(), viewB())
		}
		finish()
	case IRem:
		quo := m.scratch[2][:bits.Words(int(in.aw))+1]
		if in.sa {
			bits.DivRemS(quo, res, viewA(), viewB(), int(in.aw), int(in.bw))
		} else {
			bits.DivRemU(quo, res, viewA(), viewB())
		}
		finish()
	case ILt:
		m.t[in.dst] = b2u(m.cmpWide(in) < 0)
	case ILeq:
		m.t[in.dst] = b2u(m.cmpWide(in) <= 0)
	case IGt:
		m.t[in.dst] = b2u(m.cmpWide(in) > 0)
	case IGeq:
		m.t[in.dst] = b2u(m.cmpWide(in) >= 0)
	case IEq:
		m.t[in.dst] = b2u(m.cmpWide(in) == 0)
	case INeq:
		m.t[in.dst] = b2u(m.cmpWide(in) != 0)
	case IShl:
		bits.ShlInto(res, viewA(), int(in.p0), int(in.dw))
		copy(dst, res)
	case IShr:
		bits.ShrInto(res, viewA(), int(in.p0), int(in.aw), in.sa, int(in.dw))
		copy(dst, res)
	case IDshl:
		bits.ShlInto(res, viewA(), int(m.t[in.b]), int(in.dw))
		copy(dst, res)
	case IDshr:
		sh := int(m.t[in.b])
		bits.ShrInto(res, viewA(), sh, int(in.aw), in.sa, int(in.dw))
		copy(dst, res)
	case INeg:
		bits.NegInto(res, extA(s0))
		finish()
	case INot:
		bits.NotInto(res, viewA(), int(in.dw))
		copy(dst, res)
	case IAnd:
		bits.AndInto(res, extA(s0), extB(s1))
		finish()
	case IOr:
		bits.OrInto(res, extA(s0), extB(s1))
		finish()
	case IXor:
		bits.XorInto(res, extA(s0), extB(s1))
		finish()
	case IAndr:
		m.t[in.dst] = bits.AndR(viewA(), int(in.aw))
	case IOrr:
		m.t[in.dst] = bits.OrR(viewA())
	case IXorr:
		m.t[in.dst] = bits.XorR(viewA())
	case ICat:
		bits.CatInto(res, viewA(), viewB(), int(in.aw), int(in.bw))
		copy(dst, res)
	case IBits:
		bits.ExtractInto(res, viewA(), int(in.p0), int(in.p1))
		copy(dst, res)
	case IHead:
		bits.ExtractInto(res, viewA(), int(in.aw)-1, int(in.aw)-int(in.p0))
		copy(dst, res)
	case ITail:
		src := viewA()
		for i := range res {
			if i < len(src) {
				res[i] = src[i]
			} else {
				res[i] = 0
			}
		}
		bits.MaskInto(res, int(in.dw))
		copy(dst, res)
	}
}

// cmpWide compares the two operands of a wide comparison instruction.
func (m *machine) cmpWide(in *instr) int {
	n := bits.Words(int(in.aw))
	if w := bits.Words(int(in.bw)); w > n {
		n = w
	}
	s0 := m.scratch[0][:n]
	s1 := m.scratch[1][:n]
	bits.ExtendInto(s0, m.view(in.a, in.aw), int(in.aw), in.sa)
	bits.ExtendInto(s1, m.view(in.b, in.bw), int(in.bw), in.sb)
	return bits.Cmp(s0, s1, in.sa)
}
