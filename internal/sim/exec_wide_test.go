package sim

import (
	"fmt"
	"math/big"
	"testing"
)

// The wide-path edge cases: shifts that cross 64-bit word boundaries,
// signed comparisons straddling the narrow/wide threshold, and
// cat/bits extractions spanning words. Every case runs on the fused and
// unfused full-cycle machines and on CCSS, so the wide interpreter is
// exercised through both schedule shapes.

// bigToWords encodes v (possibly negative) as two's complement limbs.
func bigToWords(v *big.Int, width int) []uint64 {
	mod := new(big.Int).Lsh(big.NewInt(1), uint(width))
	x := new(big.Int).Mod(v, mod)
	words := make([]uint64, (width+63)/64)
	mask := new(big.Int).SetUint64(^uint64(0))
	tmp := new(big.Int).Set(x)
	for i := range words {
		words[i] = new(big.Int).And(tmp, mask).Uint64()
		tmp.Rsh(tmp, 64)
	}
	return words
}

// wideEngines builds the four interpreter variants under test.
func wideEngines(t *testing.T, src string) []Simulator {
	t.Helper()
	d := compileSrc(t, src)
	fc, err := NewFullCycle(d, false)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := NewFullCycleOpts(d, false, true)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewCCSS(d, CCSSOptions{Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	ccNF, err := NewCCSS(d, CCSSOptions{Cp: 8, NoFuse: true})
	if err != nil {
		t.Fatal(err)
	}
	return []Simulator{fc, nf, cc, ccNF}
}

func checkWide(t *testing.T, s Simulator, name string, want *big.Int, width int) {
	t.Helper()
	got := s.PeekWide(sigID(t, s, name), nil)
	exp := bigToWords(want, width)
	for len(got) < len(exp) {
		got = append(got, 0)
	}
	for w := range exp {
		if got[w] != exp[w] {
			t.Errorf("%s word %d = %#x, want %#x (value %s)", name, w, got[w], exp[w], want)
			return
		}
	}
	for w := len(exp); w < len(got); w++ {
		if got[w] != 0 {
			t.Errorf("%s word %d = %#x, want 0 (beyond width %d)", name, w, got[w], width)
		}
	}
}

func TestWideShiftsAcrossWordBoundaries(t *testing.T) {
	src := `
circuit WS :
  module WS :
    input a : UInt<128>
    input sh : UInt<7>
    output l : UInt<191>
    output r : UInt<65>
    output dl : UInt<255>
    output dr : UInt<128>
    l <= shl(a, 63)
    r <= shr(a, 63)
    dl <= dshl(a, sh)
    dr <= dshr(a, sh)
`
	sims := wideEngines(t, src)
	mask128 := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 128), big.NewInt(1))
	vals := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Set(mask128),                 // all ones
		new(big.Int).Lsh(big.NewInt(1), 127),      // top bit only
		new(big.Int).Lsh(big.NewInt(0xDEAD), 56),  // straddles the word seam
		new(big.Int).SetUint64(0x0123456789ABCDEF),
	}
	for _, a := range vals {
		for _, sh := range []uint{0, 1, 31, 63, 64, 65, 100, 127} {
			for si, s := range sims {
				s.PokeWide(sigID(t, s, "a"), bigToWords(a, 128))
				s.Poke(sigID(t, s, "sh"), uint64(sh))
				if err := s.Step(1); err != nil {
					t.Fatal(err)
				}
				t.Run(fmt.Sprintf("sim%d/a=%s/sh=%d", si, a.Text(16), sh), func(t *testing.T) {
					checkWide(t, s, "l", new(big.Int).Lsh(a, 63), 191)
					checkWide(t, s, "r", new(big.Int).Rsh(a, 63), 65)
					checkWide(t, s, "dl", new(big.Int).Lsh(a, sh), 255)
					checkWide(t, s, "dr", new(big.Int).Rsh(a, sh), 128)
				})
			}
		}
	}
}

func TestWideSignedCompareBoundaryWidths(t *testing.T) {
	// 64 bits rides the narrow signed path; 65 is the smallest wide
	// signed comparison (sign bit in word 1 bit 0); 128 is word-aligned
	// wide. All three must agree with big.Int.
	src := `
circuit WC :
  module WC :
`
	ports := `    input a%d : SInt<%d>
    input b%d : SInt<%d>
    output olt%d : UInt<1>
    output oleq%d : UInt<1>
    output ogt%d : UInt<1>
    output ogeq%d : UInt<1>
    output oeq%d : UInt<1>
`
	conns := `    olt%d <= lt(a%d, b%d)
    oleq%d <= leq(a%d, b%d)
    ogt%d <= gt(a%d, b%d)
    ogeq%d <= geq(a%d, b%d)
    oeq%d <= eq(a%d, b%d)
`
	widths := []int{64, 65, 128}
	for _, w := range widths {
		src += fmt.Sprintf(ports, w, w, w, w, w, w, w, w, w)
	}
	for _, w := range widths {
		src += fmt.Sprintf(conns, w, w, w, w, w, w, w, w, w, w, w, w, w, w, w)
	}
	sims := wideEngines(t, src)
	b01 := func(b bool) *big.Int {
		if b {
			return big.NewInt(1)
		}
		return big.NewInt(0)
	}
	for _, w := range widths {
		min := new(big.Int).Neg(new(big.Int).Lsh(big.NewInt(1), uint(w-1)))
		max := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(w-1)), big.NewInt(1))
		probe := []*big.Int{min, big.NewInt(-1), big.NewInt(0), big.NewInt(1), max,
			new(big.Int).Add(min, big.NewInt(1))}
		for _, a := range probe {
			for _, b := range probe {
				for si, s := range sims {
					s.PokeWide(sigID(t, s, fmt.Sprintf("a%d", w)), bigToWords(a, w))
					s.PokeWide(sigID(t, s, fmt.Sprintf("b%d", w)), bigToWords(b, w))
					if err := s.Step(1); err != nil {
						t.Fatal(err)
					}
					c := a.Cmp(b)
					for name, want := range map[string]*big.Int{
						fmt.Sprintf("olt%d", w):  b01(c < 0),
						fmt.Sprintf("oleq%d", w): b01(c <= 0),
						fmt.Sprintf("ogt%d", w):  b01(c > 0),
						fmt.Sprintf("ogeq%d", w): b01(c >= 0),
						fmt.Sprintf("oeq%d", w):  b01(c == 0),
					} {
						if got := s.Peek(sigID(t, s, name)); got != want.Uint64() {
							t.Errorf("sim%d w=%d a=%s b=%s: %s = %d, want %s",
								si, w, a, b, name, got, want)
						}
					}
				}
			}
		}
	}
}

func TestWideCatBitsSpanningWords(t *testing.T) {
	src := `
circuit CB :
  module CB :
    input a : UInt<100>
    input b : UInt<90>
    output c : UInt<190>
    output mid : UInt<80>
    output seam : UInt<2>
    output low : UInt<64>
    output cc : UInt<154>
    c <= cat(a, b)
    mid <= bits(a, 95, 16)
    seam <= bits(a, 64, 63)
    low <= bits(a, 63, 0)
    cc <= cat(bits(a, 99, 36), b)
`
	sims := wideEngines(t, src)
	mask := func(n uint) *big.Int {
		return new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), n), big.NewInt(1))
	}
	vals := []*big.Int{
		big.NewInt(0),
		mask(100),
		new(big.Int).Lsh(big.NewInt(0b11), 62), // ones on both sides of the seam
		new(big.Int).SetUint64(0xFEDCBA9876543210),
		new(big.Int).Lsh(new(big.Int).SetUint64(0x123456789), 48),
	}
	bvals := []*big.Int{big.NewInt(0), mask(90), new(big.Int).Lsh(big.NewInt(0xACE), 60)}
	ext := func(v *big.Int, hi, lo uint) *big.Int {
		return new(big.Int).And(new(big.Int).Rsh(v, lo), mask(hi-lo+1))
	}
	for _, a := range vals {
		for _, b := range bvals {
			for si, s := range sims {
				s.PokeWide(sigID(t, s, "a"), bigToWords(a, 100))
				s.PokeWide(sigID(t, s, "b"), bigToWords(b, 90))
				if err := s.Step(1); err != nil {
					t.Fatal(err)
				}
				t.Run(fmt.Sprintf("sim%d/a=%s/b=%s", si, a.Text(16), b.Text(16)), func(t *testing.T) {
					cat := new(big.Int).Or(new(big.Int).Lsh(a, 90), b)
					checkWide(t, s, "c", cat, 190)
					checkWide(t, s, "mid", ext(a, 95, 16), 80)
					checkWide(t, s, "seam", ext(a, 64, 63), 2)
					checkWide(t, s, "low", ext(a, 63, 0), 64)
					cc := new(big.Int).Or(new(big.Int).Lsh(ext(a, 99, 36), 90), b)
					checkWide(t, s, "cc", cc, 154)
				})
			}
		}
	}
}
