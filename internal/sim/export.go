package sim

import (
	"essent/internal/netlist"
	"essent/internal/sched"
)

// GenProgram is an exported view of a compiled machine for the code
// generator: the same value-table layout, instruction stream, and
// schedule the interpreter executes, so emitted code is semantically
// identical by construction.
type GenProgram struct {
	D        *netlist.Design
	Off      []int32
	NW       []int32
	ConstOff []int32
	TableLen int
	MaxWords int

	Instrs     []GenInstr
	Sched      []GenSched
	SchedPosOf []int32
	// InstrOf maps SignalID → index into Instrs (-1 for non-comb).
	InstrOf []int32
	RegCopy []int
	Elided  []bool

	MemWrites []GenMemWrite
	Displays  []GenDisplay
	Checks    []GenCheck

	// Plan is non-nil for CCSS programs.
	Plan *sched.CCSSPlan
}

// GenInstr mirrors one compiled instruction.
type GenInstr struct {
	Code           ICode
	Wide           bool
	SA, SB, SC     bool
	A, B, C, Dst   int32
	AW, BW, CW, DW int32
	P0, P1         int32
	Mem            int32
	Out            netlist.SignalID
}

// GenSched mirrors one schedule entry.
type GenSched struct {
	Kind uint8
	Idx  int32
}

// Schedule entry kinds (exported mirrors).
const (
	GenInstrEntry    = seInstr
	GenDisplayEntry  = seDisplay
	GenCheckEntry    = seCheck
	GenMemWriteEntry = seMemWrite
)

// GenOperand is a resolved operand reference.
type GenOperand struct {
	Off    int32
	W      int32
	Signed bool
}

// GenMemWrite mirrors a compiled write port.
type GenMemWrite struct {
	Mem                  int32
	Addr, En, Data, Mask GenOperand
}

// GenDisplay mirrors a compiled printf.
type GenDisplay struct {
	En     GenOperand
	Format string
	Args   []GenOperand
}

// GenCheck mirrors a compiled assert/stop.
type GenCheck struct {
	En, Pred GenOperand
	Msg      string
	Stop     bool
	Code     int
}

func exportOperand(o operand) GenOperand {
	return GenOperand{Off: o.off, W: o.w, Signed: o.signed}
}

func exportMachine(m *machine, plan *sched.CCSSPlan) *GenProgram {
	g := &GenProgram{
		D: m.d, Off: m.off, NW: m.nw, ConstOff: m.constOff,
		TableLen: len(m.t), RegCopy: m.regCopy, Elided: m.elided,
		SchedPosOf: m.schedPosOf, InstrOf: m.instrOf, Plan: plan,
	}
	maxW := 1
	for _, n := range m.nw {
		if int(n) > maxW {
			maxW = int(n)
		}
	}
	g.MaxWords = maxW
	for _, in := range m.instrs {
		g.Instrs = append(g.Instrs, GenInstr{
			Code: in.code, Wide: in.wide, SA: in.sa, SB: in.sb, SC: in.sc,
			A: in.a, B: in.b, C: in.c, Dst: in.dst,
			AW: in.aw, BW: in.bw, CW: in.cw, DW: in.dw,
			P0: in.p0, P1: in.p1, Mem: in.mem, Out: in.out,
		})
	}
	for _, e := range m.sched {
		g.Sched = append(g.Sched, GenSched{Kind: e.kind, Idx: e.idx})
	}
	for i := range m.memWrites {
		w := &m.memWrites[i]
		g.MemWrites = append(g.MemWrites, GenMemWrite{
			Mem:  w.mem,
			Addr: exportOperand(w.addr), En: exportOperand(w.en),
			Data: exportOperand(w.data), Mask: exportOperand(w.mask),
		})
	}
	for i := range m.displays {
		d := &m.displays[i]
		gd := GenDisplay{En: exportOperand(d.en), Format: d.format}
		for _, a := range d.args {
			gd.Args = append(gd.Args, exportOperand(a))
		}
		g.Displays = append(g.Displays, gd)
	}
	for i := range m.checks {
		c := &m.checks[i]
		g.Checks = append(g.Checks, GenCheck{
			En: exportOperand(c.en), Pred: exportOperand(c.pred),
			Msg: c.msg, Stop: c.stop, Code: c.code,
		})
	}
	return g
}

// ExportFullCycle compiles a full-cycle program view (the generator's
// baseline and optimized full-cycle modes).
func ExportFullCycle(d *netlist.Design, elide bool) (*GenProgram, error) {
	plan, err := sched.Build(d, elide)
	if err != nil {
		return nil, err
	}
	m, err := newMachine(d, plan.DG, plan.Order, plan.Elided)
	if err != nil {
		return nil, err
	}
	return exportMachine(m, nil), nil
}

// ExportCCSS compiles a CCSS program view with partition metadata.
func ExportCCSS(d *netlist.Design, cp int) (*GenProgram, error) {
	return ExportCCSSOpts(d, sched.PlanOptions{Cp: cp})
}

// ExportCCSSOpts is ExportCCSS with explicit optimization knobs. The
// generator applies mux shadowing itself, so the plan's shadow analysis
// result is carried in the plan, not the schedule.
func ExportCCSSOpts(d *netlist.Design, opts sched.PlanOptions) (*GenProgram, error) {
	plan, err := sched.PlanCCSSOpts(d, opts)
	if err != nil {
		return nil, err
	}
	m, err := newMachine(d, plan.DG, plan.Order, plan.Elided)
	if err != nil {
		return nil, err
	}
	return exportMachine(m, plan), nil
}

// ConstWords exposes the materialized constant-pool initialization values
// (offset/value pairs) for generated code.
func (g *GenProgram) ConstWords() (offs []int32, vals []uint64) {
	for i := range g.D.Consts {
		c := &g.D.Consts[i]
		for w, v := range c.Words {
			if v != 0 {
				offs = append(offs, g.ConstOff[i]+int32(w))
				vals = append(vals, v)
			}
		}
	}
	return offs, vals
}
