package sim

import (
	"essent/internal/netlist"
	"essent/internal/sched"
	"essent/internal/verify"
)

// FullCycle is a pure full-cycle simulator: the entire design evaluates
// every cycle on a static schedule. With Optimized false it is the
// paper's Baseline; with Optimized true it additionally applies netlist
// optimizations and register update elision — the design point of
// optimized full-cycle simulators like Verilator.
type FullCycle struct {
	*machine
}

// NewFullCycle compiles a full-cycle simulator. optimized enables
// register update elision (the caller applies netlist-level optimization
// passes before construction if desired).
func NewFullCycle(d *netlist.Design, optimized bool) (*FullCycle, error) {
	return NewFullCycleOpts(d, optimized, false)
}

// NewFullCycleOpts is NewFullCycle with the superinstruction-fusion
// ablation knob exposed (noFuse true reproduces the unfused interpreter
// bit-exactly). Verification runs in strict mode.
func NewFullCycleOpts(d *netlist.Design, optimized, noFuse bool) (*FullCycle, error) {
	return NewFullCycleVerify(d, optimized, noFuse, verify.Strict)
}

// NewFullCycleVerify is NewFullCycleOpts with explicit verification
// enforcement: the netlist lint and the machine-schedule checks run
// under vmode (there is no partition plan on this engine). The
// optimizer's constant-folding scratch simulator passes verify.Off —
// it rebuilds mid-pipeline netlists many times and re-verifies through
// the real engine constructor afterwards.
func NewFullCycleVerify(d *netlist.Design, optimized, noFuse bool,
	vmode verify.Mode) (*FullCycle, error) {
	plan, err := sched.Build(d, optimized)
	if err != nil {
		return nil, err
	}
	if vmode != verify.Off {
		if err := verify.Enforce(vmode, verify.DesignPrePlanned(d), nil); err != nil {
			return nil, err
		}
	}
	m, ranges, err := newMachineCfg(d, plan.DG, plan.Order, plan.Elided,
		machineConfig{shadows: plan.Shadows, fuse: !noFuse})
	if err != nil {
		return nil, err
	}
	if vmode != verify.Off {
		if err := verify.Enforce(vmode,
			verifyMachine(m, ranges, nil, nil), nil); err != nil {
			return nil, err
		}
	}
	return &FullCycle{machine: m}, nil
}

// Step simulates n cycles.
func (f *FullCycle) Step(n int) error {
	for i := 0; i < n; i++ {
		if err := f.step(); err != nil {
			return err
		}
	}
	return nil
}

var _ Simulator = (*FullCycle)(nil)
