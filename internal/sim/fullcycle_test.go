package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"essent/internal/firrtl"
	"essent/internal/netlist"
)

// compileSrc builds a design from FIRRTL source.
func compileSrc(t *testing.T, src string) *netlist.Design {
	t.Helper()
	c, err := firrtl.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := netlist.Compile(c)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return d
}

func newFC(t *testing.T, src string, opt bool) *FullCycle {
	t.Helper()
	d := compileSrc(t, src)
	s, err := NewFullCycle(d, opt)
	if err != nil {
		t.Fatalf("NewFullCycle: %v", err)
	}
	return s
}

func sigID(t *testing.T, s Simulator, name string) netlist.SignalID {
	t.Helper()
	id, ok := s.Design().SignalByName(name)
	if !ok {
		t.Fatalf("no signal %q", name)
	}
	return id
}

const counterSrc = `
circuit Counter :
  module Counter :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output count : UInt<8>
    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      r <= tail(add(r, UInt<8>(1)), 1)
    count <= r
`

func TestCounterBothModes(t *testing.T) {
	for _, opt := range []bool{false, true} {
		s := newFC(t, counterSrc, opt)
		en := sigID(t, s, "en")
		rst := sigID(t, s, "reset")
		count := sigID(t, s, "count")

		// The output port `count` is sampled pre-edge (single-pass
		// compiled-simulator semantics); the register itself shows the
		// post-edge value.
		r := sigID(t, s, "r")
		s.Poke(rst, 0)
		s.Poke(en, 1)
		if err := s.Step(5); err != nil {
			t.Fatal(err)
		}
		if got := s.Peek(r); got != 5 {
			t.Fatalf("opt=%v: r=%d, want 5", opt, got)
		}
		if got := s.Peek(count); got != 4 {
			t.Fatalf("opt=%v: count=%d (pre-edge view), want 4", opt, got)
		}
		// Disable: holds.
		s.Poke(en, 0)
		if err := s.Step(3); err != nil {
			t.Fatal(err)
		}
		if got := s.Peek(r); got != 5 {
			t.Fatalf("opt=%v: r=%d after hold, want 5", opt, got)
		}
		// Reset.
		s.Poke(rst, 1)
		if err := s.Step(1); err != nil {
			t.Fatal(err)
		}
		if got := s.Peek(r); got != 0 {
			t.Fatalf("opt=%v: r=%d after reset, want 0", opt, got)
		}
		// Wraparound: 260 increments of an 8-bit register.
		s.Poke(rst, 0)
		s.Poke(en, 1)
		if err := s.Step(260); err != nil {
			t.Fatal(err)
		}
		if got := s.Peek(r); got != 4 {
			t.Fatalf("opt=%v: r=%d after wrap, want 4", opt, got)
		}
	}
}

func TestCombinationalOps(t *testing.T) {
	src := `
circuit Comb :
  module Comb :
    input a : UInt<8>
    input b : UInt<8>
    output sum : UInt<9>
    output diff : UInt<9>
    output prod : UInt<16>
    output quo : UInt<8>
    output lt : UInt<1>
    output muxo : UInt<8>
    sum <= add(a, b)
    diff <= asUInt(sub(a, b))
    prod <= mul(a, b)
    quo <= div(a, b)
    lt <= lt(a, b)
    muxo <= mux(lt(a, b), a, b)
`
	s := newFC(t, src, false)
	a, b := sigID(t, s, "a"), sigID(t, s, "b")
	s.Poke(a, 200)
	s.Poke(b, 13)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	checks := map[string]uint64{
		"sum":  213,
		"diff": 187,
		"prod": 2600,
		"quo":  15,
		"lt":   0,
		"muxo": 13,
	}
	for name, want := range checks {
		if got := s.Peek(sigID(t, s, name)); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	// diff wraps when a < b: sub yields two's complement in 9 bits.
	s.Poke(a, 5)
	s.Poke(b, 7)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := s.Peek(sigID(t, s, "diff")); got != 510 { // -2 mod 512
		t.Errorf("diff = %d, want 510", got)
	}
	if got := s.Peek(sigID(t, s, "muxo")); got != 5 {
		t.Errorf("muxo = %d, want 5", got)
	}
}

func TestSignedArithmetic(t *testing.T) {
	src := `
circuit S :
  module S :
    input a : SInt<8>
    input b : SInt<8>
    output sum : SInt<9>
    output neg : SInt<9>
    output ge : UInt<1>
    output shr : SInt<4>
    sum <= add(a, b)
    neg <= neg(asUInt(a))
    ge <= geq(a, b)
    shr <= shr(a, 4)
`
	s := newFC(t, src, false)
	a, b := sigID(t, s, "a"), sigID(t, s, "b")
	// a = -100 (two's complement in 8 bits: 156), b = 27
	s.Poke(a, 156)
	s.Poke(b, 27)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	// sum = -73 → 512-73 = 439 in 9 bits
	if got := s.Peek(sigID(t, s, "sum")); got != 439 {
		t.Errorf("sum = %d, want 439", got)
	}
	// neg(asUInt(a)) = -(156) → 512-156 = 356
	if got := s.Peek(sigID(t, s, "neg")); got != 356 {
		t.Errorf("neg = %d, want 356", got)
	}
	if got := s.Peek(sigID(t, s, "ge")); got != 0 {
		t.Errorf("ge = %d, want 0", got)
	}
	// shr(-100, 4) arithmetic = -7 → 16-7 = 9 in 4 bits
	if got := s.Peek(sigID(t, s, "shr")); got != 9 {
		t.Errorf("shr = %d, want 9", got)
	}
}

func TestWideArithmetic(t *testing.T) {
	src := `
circuit W :
  module W :
    input a : UInt<100>
    input b : UInt<100>
    output sum : UInt<101>
    output hi : UInt<36>
    output catted : UInt<200>
    output eq : UInt<1>
    sum <= add(a, b)
    hi <= bits(a, 99, 64)
    catted <= cat(a, b)
    eq <= eq(a, b)
`
	s := newFC(t, src, false)
	a, b := sigID(t, s, "a"), sigID(t, s, "b")
	s.PokeWide(a, []uint64{0xFFFFFFFFFFFFFFFF, 0xF_FFFFFFFF}) // 2^100-1
	s.PokeWide(b, []uint64{1, 0})
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	sum := s.PeekWide(sigID(t, s, "sum"), nil)
	if sum[0] != 0 || sum[1] != 0x10_00000000 { // 2^100
		t.Errorf("wide sum = %#x, want 2^100", sum)
	}
	if got := s.Peek(sigID(t, s, "hi")); got != 0xF_FFFFFFFF {
		t.Errorf("hi = %#x", got)
	}
	if got := s.Peek(sigID(t, s, "eq")); got != 0 {
		t.Errorf("eq = %d, want 0", got)
	}
	// cat = a<<100 | b: bits 100..127 live in limb 1 bits 36..63.
	cat := s.PeekWide(sigID(t, s, "catted"), nil)
	if cat[0] != 1 || cat[1] != 0xFFFFFFF000000000 {
		t.Errorf("cat low words = %#x", cat[:2])
	}
	if cat[2] != 0xFFFFFFFFFFFFFFFF || cat[3] != 0xFF {
		t.Errorf("cat high words = %#x", cat[2:])
	}
}

const memSrc = `
circuit M :
  module M :
    input clock : Clock
    input waddr : UInt<4>
    input wdata : UInt<32>
    input wen : UInt<1>
    input raddr : UInt<4>
    output rdata : UInt<32>
    mem m :
      data-type => UInt<32>
      depth => 16
      read-latency => 0
      write-latency => 1
      reader => r
      writer => w
    m.r.addr <= raddr
    m.r.en <= UInt<1>(1)
    m.r.clk <= clock
    m.w.addr <= waddr
    m.w.en <= wen
    m.w.clk <= clock
    m.w.data <= wdata
    m.w.mask <= UInt<1>(1)
    rdata <= m.r.data
`

func TestMemoryReadWrite(t *testing.T) {
	for _, opt := range []bool{false, true} {
		s := newFC(t, memSrc, opt)
		waddr, wdata, wen := sigID(t, s, "waddr"), sigID(t, s, "wdata"), sigID(t, s, "wen")
		raddr, rdata := sigID(t, s, "raddr"), sigID(t, s, "rdata")

		// Write 0xDEAD to address 3.
		s.Poke(waddr, 3)
		s.Poke(wdata, 0xDEAD)
		s.Poke(wen, 1)
		s.Poke(raddr, 3)
		if err := s.Step(1); err != nil {
			t.Fatal(err)
		}
		// Write latency 1: a read in the same cycle sees old (0) data —
		// rdata was computed before the write committed.
		if got := s.Peek(rdata); got != 0 {
			t.Fatalf("opt=%v: same-cycle read = %#x, want 0", opt, got)
		}
		s.Poke(wen, 0)
		if err := s.Step(1); err != nil {
			t.Fatal(err)
		}
		if got := s.Peek(rdata); got != 0xDEAD {
			t.Fatalf("opt=%v: read after write = %#x, want 0xDEAD", opt, got)
		}
		if got := s.PeekMem(0, 3); got != 0xDEAD {
			t.Fatalf("opt=%v: PeekMem = %#x", opt, got)
		}
	}
}

func TestPrintfAndStop(t *testing.T) {
	src := `
circuit P :
  module P :
    input clock : Clock
    input reset : UInt<1>
    output done : UInt<1>
    reg cnt : UInt<4>, clock with : (reset => (reset, UInt<4>(0)))
    cnt <= tail(add(cnt, UInt<4>(1)), 1)
    printf(clock, UInt<1>(1), "cnt=%d\n", cnt)
    node finished = eq(cnt, UInt<4>(3))
    done <= finished
    stop(clock, finished, 42)
`
	s := newFC(t, src, false)
	var buf bytes.Buffer
	s.SetOutput(&buf)
	s.Poke(sigID(t, s, "reset"), 0)
	err := s.Step(10)
	if err == nil {
		t.Fatal("expected stop")
	}
	var stop *StopError
	if !errors.As(err, &stop) {
		t.Fatalf("expected StopError, got %v", err)
	}
	if stop.Code != 42 {
		t.Fatalf("stop code = %d, want 42", stop.Code)
	}
	if !errors.Is(err, ErrStopped) {
		t.Fatal("errors.Is(ErrStopped) should match")
	}
	out := buf.String()
	if !strings.Contains(out, "cnt=0\n") || !strings.Contains(out, "cnt=3\n") {
		t.Fatalf("printf output wrong:\n%s", out)
	}
	if strings.Contains(out, "cnt=4") {
		t.Fatal("simulation should have stopped at cnt=3")
	}
	// Stepping after stop returns the same error.
	if err2 := s.Step(1); err2 == nil {
		t.Fatal("step after stop should fail")
	}
	// Reset clears the stop.
	s.Reset()
	if got := s.Stats().Cycles; got != 4 {
		t.Fatalf("cycles = %d, want 4", got)
	}
	if err := s.Step(2); err != nil {
		t.Fatalf("step after reset: %v", err)
	}
}

func TestAssertFailure(t *testing.T) {
	src := `
circuit A :
  module A :
    input clock : Clock
    input x : UInt<4>
    output o : UInt<4>
    o <= x
    assert(clock, lt(x, UInt<4>(10)), UInt<1>(1), "x out of range")
`
	s := newFC(t, src, false)
	x := sigID(t, s, "x")
	s.Poke(x, 5)
	if err := s.Step(1); err != nil {
		t.Fatalf("assert should pass: %v", err)
	}
	s.Poke(x, 12)
	err := s.Step(1)
	var ae *AssertError
	if !errors.As(err, &ae) {
		t.Fatalf("expected AssertError, got %v", err)
	}
	if !strings.Contains(ae.Error(), "x out of range") {
		t.Fatalf("message missing: %v", ae)
	}
}

// TestRegChain verifies two-phase semantics: a shift register must move
// one stage per cycle in both modes (elision ordering must not break it).
func TestRegChain(t *testing.T) {
	src := `
circuit Chain :
  module Chain :
    input clock : Clock
    input in : UInt<8>
    output out : UInt<8>
    reg r1 : UInt<8>, clock
    reg r2 : UInt<8>, clock
    reg r3 : UInt<8>, clock
    r1 <= in
    r2 <= r1
    r3 <= r2
    out <= r3
`
	for _, opt := range []bool{false, true} {
		s := newFC(t, src, opt)
		in, r3 := sigID(t, s, "in"), sigID(t, s, "r3")
		s.Poke(in, 7)
		if err := s.Step(1); err != nil {
			t.Fatal(err)
		}
		s.Poke(in, 0)
		if got := s.Peek(r3); got != 0 {
			t.Fatalf("opt=%v: r3=%d after 1 cycle, want 0", opt, got)
		}
		if err := s.Step(2); err != nil {
			t.Fatal(err)
		}
		if got := s.Peek(r3); got != 7 {
			t.Fatalf("opt=%v: r3=%d after 3 cycles, want 7", opt, got)
		}
		if err := s.Step(1); err != nil {
			t.Fatal(err)
		}
		if got := s.Peek(r3); got != 0 {
			t.Fatalf("opt=%v: r3=%d after 4 cycles, want 0", opt, got)
		}
	}
}

// TestRegSwap is the mutual-feedback case where at most one register can
// be elided: r1 and r2 exchange values every cycle.
func TestRegSwap(t *testing.T) {
	src := `
circuit Swap :
  module Swap :
    input clock : Clock
    output o1 : UInt<8>
    output o2 : UInt<8>
    reg r1 : UInt<8>, clock with : (reset => (UInt<1>(0), UInt<8>(0)))
    reg r2 : UInt<8>, clock
    wire t1 : UInt<8>
    wire t2 : UInt<8>
    t1 <= r2
    t2 <= r1
    r1 <= t1
    r2 <= t2
    o1 <= r1
    o2 <= r2
`
	// Seed r1 via its "reset": simpler — drive with an init value design:
	// instead check the swap dynamics from known zero state by poking is
	// impossible (no inputs), so just verify stability: swapping zeros.
	for _, opt := range []bool{false, true} {
		s := newFC(t, src, opt)
		if err := s.Step(4); err != nil {
			t.Fatal(err)
		}
		if s.Peek(sigID(t, s, "o1")) != 0 || s.Peek(sigID(t, s, "o2")) != 0 {
			t.Fatalf("opt=%v: zero swap should stay zero", opt)
		}
	}
}

func TestDshlDshr(t *testing.T) {
	src := `
circuit D :
  module D :
    input a : UInt<16>
    input sh : UInt<4>
    output l : UInt<31>
    output r : UInt<16>
    l <= dshl(a, sh)
    r <= dshr(a, sh)
`
	s := newFC(t, src, false)
	s.Poke(sigID(t, s, "a"), 0x8001)
	s.Poke(sigID(t, s, "sh"), 15)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := s.Peek(sigID(t, s, "l")); got != 0x8001<<15 {
		t.Errorf("dshl = %#x", got)
	}
	if got := s.Peek(sigID(t, s, "r")); got != 1 {
		t.Errorf("dshr = %#x, want 1", got)
	}
}

func TestReductionsAndBits(t *testing.T) {
	src := `
circuit R :
  module R :
    input a : UInt<8>
    output ar : UInt<1>
    output or : UInt<1>
    output xr : UInt<1>
    output hd : UInt<3>
    output tl : UInt<5>
    ar <= andr(a)
    or <= orr(a)
    xr <= xorr(a)
    hd <= head(a, 3)
    tl <= tail(a, 3)
`
	s := newFC(t, src, false)
	a := sigID(t, s, "a")
	s.Poke(a, 0b1011_0110)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{"ar": 0, "or": 1, "xr": 1, "hd": 0b101, "tl": 0b10110}
	for name, w := range want {
		if got := s.Peek(sigID(t, s, name)); got != w {
			t.Errorf("%s = %#b, want %#b", name, got, w)
		}
	}
	s.Poke(a, 0xFF)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := s.Peek(sigID(t, s, "ar")); got != 1 {
		t.Errorf("andr(0xFF) = %d, want 1", got)
	}
}

func TestStatsCounting(t *testing.T) {
	s := newFC(t, counterSrc, false)
	s.Poke(sigID(t, s, "en"), 1)
	if err := s.Step(10); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Cycles != 10 {
		t.Fatalf("cycles = %d", st.Cycles)
	}
	if st.OpsEvaluated == 0 {
		t.Fatal("no ops counted")
	}
	// Full-cycle: same op count every cycle.
	if st.OpsEvaluated%10 != 0 {
		t.Fatalf("full-cycle op count should be cycle-uniform: %d", st.OpsEvaluated)
	}
}
