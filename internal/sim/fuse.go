package sim

import (
	"essent/internal/bits"
	"essent/internal/netlist"
)

// Superinstruction fusion: a post-compile peephole pass over the
// schedule that merges hot producer→consumer pairs into single combined
// instructions, eliminating one dispatch plus one value-table round-trip
// per pair. Three value patterns are recognized —
//
//	cmp(a,b) → mux(cmp, T, F)      ⇒ IFCmpMux
//	not(x)   → and(not, y)         ⇒ IFNotAnd
//	add/sub  → tail(sum, k)        ⇒ IFAddTail / IFSubTail
//
// — plus one control pattern: an instruction immediately followed by the
// skip entry its result guards collapses into a fused skip
// (seSkipIfZeroF / seSkipIfNonzeroF), which executes the instruction and
// branches on its destination in one schedule step.
//
// Legality for the value patterns: the producer must be narrow and
// unsigned (kNarrow), its destination must be dead outside the consumer
// (single table reference, not in the engine's live set), the pair must
// sit in the same schedule group and the same skip region, and no entry
// between them may overwrite the producer's operands. The producer's
// store is then eliminated entirely: its schedule entry is removed and
// its stale table slot is never written again — legal precisely because
// nothing observable reads it, the same staleness contract CCSS already
// applies to sleeping partitions.
//
// The pass runs only on interpreter machines (cfg.fuse): the event-driven
// engine and the codegen export path keep the unfused stream.

// producer codes and consumer codes are disjoint, so a fused consumer can
// never be re-matched as a producer and chains terminate after one step.
func isFuseProducer(c ICode) bool {
	switch c {
	case IEq, INeq, ILt, ILeq, IGt, IGeq, INot, IAdd, ISub:
		return true
	}
	return false
}

// fuseSchedule runs the peephole pass, rebuilds the schedule without the
// removed entries, and returns the remapped group ranges.
func (m *machine) fuseSchedule(keepLive []netlist.SignalID, ranges [][2]int32) [][2]int32 {
	nsched := len(m.sched)

	// Live offsets: table slots read outside the fused instruction stream.
	// Stores to these can never be eliminated.
	live := m.engineLiveOffsets(keepLive)

	// Single-reader analysis over the instruction stream: for each table
	// offset, how many operand slots reference it and (if exactly one)
	// which instruction holds that slot.
	readers := make([]int32, len(m.t))
	readerOf := make([]int32, len(m.t))
	note := func(off int32, instrIdx int32) {
		if off < 0 {
			return
		}
		readers[off]++
		readerOf[off] = instrIdx
	}
	for ii := range m.instrs {
		in := &m.instrs[ii]
		note(in.a, int32(ii))
		note(in.b, int32(ii))
		note(in.c, int32(ii))
	}

	// Schedule positions per instruction, group index per position, and
	// skip-region id per position (well-nested span stack: every skip
	// opens a region covering exactly its n following entries).
	posOf := make([]int32, len(m.instrs))
	for i := range posOf {
		posOf[i] = -1
	}
	groupOf := make([]int32, nsched)
	for gi, r := range ranges {
		for p := r[0]; p < r[1]; p++ {
			groupOf[p] = int32(gi)
		}
	}
	region := make([]int32, nsched)
	jumpTarget := make([]bool, nsched+1)
	{
		type span struct {
			end int32
			id  int32
		}
		var stack []span
		nextID := int32(1)
		for i := 0; i < nsched; i++ {
			for len(stack) > 0 && stack[len(stack)-1].end <= int32(i) {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				region[i] = stack[len(stack)-1].id
			}
			e := &m.sched[i]
			switch e.kind {
			case seInstr:
				posOf[e.idx] = int32(i)
			case seSkipIfZero, seSkipIfNonzero:
				tgt := int32(i) + 1 + e.n
				jumpTarget[tgt] = true
				stack = append(stack, span{end: tgt, id: nextID})
				nextID++
			}
		}
	}

	// writesOver reports whether the entry at schedule position p writes
	// the single-word table slot off.
	writesOver := func(p int32, off int32) bool {
		e := &m.sched[p]
		if e.kind != seInstr {
			return false
		}
		w := &m.instrs[e.idx]
		return off >= w.dst && off < w.dst+int32(bits.Words(int(w.dw)))
	}
	operandsClobbered := func(a *instr, posA, posB int32) bool {
		for p := posA + 1; p < posB; p++ {
			if writesOver(p, a.a) || (a.b >= 0 && writesOver(p, a.b)) {
				return true
			}
		}
		return false
	}

	removed := make([]bool, nsched)

	// Value-pattern fusion: rewrite the consumer in place to read the
	// producer's operands, drop the producer's schedule entry.
	for ai := range m.instrs {
		a := &m.instrs[ai]
		if a.kind != kNarrow || !isFuseProducer(a.code) {
			continue
		}
		if live[a.dst] || readers[a.dst] != 1 {
			continue
		}
		posA := posOf[ai]
		if posA < 0 || removed[posA] {
			continue
		}
		bi := readerOf[a.dst]
		b := &m.instrs[bi]
		if b.kind != kNarrow {
			continue
		}
		posB := posOf[bi]
		if posB <= posA || groupOf[posA] != groupOf[posB] ||
			region[posA] != region[posB] {
			continue
		}
		if operandsClobbered(a, posA, posB) {
			continue
		}
		switch {
		case b.code == IMux && b.a == a.dst && a.code != INot &&
			a.code != IAdd && a.code != ISub:
			// cmp → mux selector. Move the mux ways to c/mem, the
			// comparison operands to a/b, and the comparison code to p0.
			b.c, b.mem = b.b, b.c
			b.a, b.b = a.a, a.b
			b.p0 = int32(a.code)
			b.code = IFCmpMux
		case b.code == IAnd && a.code == INot && (b.a == a.dst || b.b == a.dst):
			other := b.b
			if b.b == a.dst {
				other = b.a
			}
			b.a, b.b = a.a, other
			b.dmask &= a.dmask
			b.code = IFNotAnd
		case b.code == ITail && b.a == a.dst && (a.code == IAdd || a.code == ISub):
			b.b = a.b
			b.a = a.a
			if a.code == IAdd {
				b.code = IFAddTail
			} else {
				b.code = IFSubTail
			}
		default:
			continue
		}
		b.kind = kFused
		removed[posA] = true
		m.fusedPairs++
	}

	// Control-pattern fusion: [instr X, skip guarded by X.dst] becomes a
	// single fused skip executing X and branching on its result. Unsafe
	// only if some jump lands exactly on the skip entry (it would then
	// re-execute X); the span argument says that cannot happen for
	// mux-expansion schedules, but the jumpTarget check enforces it.
	guardKind := make(map[int32]uint8)
	for i := 0; i+1 < nsched; i++ {
		e, s := &m.sched[i], &m.sched[i+1]
		if e.kind != seInstr || removed[i] || removed[i+1] {
			continue
		}
		if s.kind != seSkipIfZero && s.kind != seSkipIfNonzero {
			continue
		}
		x := &m.instrs[e.idx]
		if x.kind == kWide || x.dst != s.idx || bits.Words(int(x.dw)) != 1 {
			continue
		}
		if jumpTarget[i+1] {
			continue
		}
		if s.kind == seSkipIfZero {
			guardKind[int32(i)] = seSkipIfZeroF
		} else {
			guardKind[int32(i)] = seSkipIfNonzeroF
		}
		removed[i+1] = true
		m.fusedPairs++
	}

	nRemoved := 0
	for _, r := range removed {
		if r {
			nRemoved++
		}
	}
	if nRemoved == 0 {
		return ranges
	}
	m.fusedEntries = nRemoved

	// Rebuild: newPos[i] = position of entry i in the compacted schedule
	// (for a removed entry, the position of the next kept one), skip
	// spans and group ranges remapped through it.
	newPos := make([]int32, nsched+1)
	cnt := int32(0)
	for i := 0; i < nsched; i++ {
		newPos[i] = cnt
		if !removed[i] {
			cnt++
		}
	}
	newPos[nsched] = cnt
	newSched := make([]schedEntry, 0, cnt)
	for i := 0; i < nsched; i++ {
		if removed[i] {
			continue
		}
		e := m.sched[i]
		if gk, ok := guardKind[int32(i)]; ok {
			old := m.sched[i+1]
			e = schedEntry{kind: gk, idx: e.idx,
				n: newPos[int32(i)+2+old.n] - newPos[i] - 1}
		} else if e.kind == seSkipIfZero || e.kind == seSkipIfNonzero {
			e.n = newPos[int32(i)+1+e.n] - newPos[i] - 1
		}
		newSched = append(newSched, e)
	}
	m.sched = newSched
	for n := range m.schedPosOf {
		if p := m.schedPosOf[n]; p >= 0 {
			m.schedPosOf[n] = newPos[p]
		}
	}
	out := make([][2]int32, len(ranges))
	for gi, r := range ranges {
		out[gi] = [2]int32{newPos[r[0]], newPos[r[1]]}
	}
	return out
}
