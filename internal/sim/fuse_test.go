package sim

import (
	"math/rand"
	"testing"

	"essent/internal/netlist"
	"essent/internal/randckt"
)

// TestFusionPatternsFire builds one instance of each fusable
// producer→consumer shape and checks the peephole pass merges them,
// that the ablation knob leaves the schedule alone, and that both
// variants compute the hand-checked values.
func TestFusionPatternsFire(t *testing.T) {
	src := `
circuit F :
  module F :
    input a : UInt<8>
    input b : UInt<8>
    input x : UInt<8>
    input y : UInt<8>
    output m : UInt<8>
    output na : UInt<8>
    output s : UInt<8>
    m <= mux(eq(a, b), x, y)
    na <= and(not(a), b)
    s <= tail(add(a, b), 1)
`
	d := compileSrc(t, src)
	fused, err := NewFullCycle(d, false)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewFullCycleOpts(d, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := fused.Stats().FusedPairs; got < 3 {
		t.Fatalf("FusedPairs = %d, want >= 3 (cmp→mux, not→and, add→tail)", got)
	}
	if got := plain.Stats().FusedPairs; got != 0 {
		t.Fatalf("noFuse machine reports FusedPairs = %d, want 0", got)
	}
	// NumSchedEntries must be fusion-invariant: it is the denominator of
	// the effective-activity metric and must not shrink when entries merge.
	if f, p := fused.NumSchedEntries(), plain.NumSchedEntries(); f != p {
		t.Fatalf("NumSchedEntries changed under fusion: fused=%d plain=%d", f, p)
	}
	for _, tc := range []struct{ a, b, x, y uint64 }{
		{10, 10, 0x5A, 0xA5},
		{10, 11, 0x5A, 0xA5},
		{0xFF, 0x0F, 1, 2},
		{0, 0, 0, 0xFF},
	} {
		for _, s := range []Simulator{fused, plain} {
			s.Poke(sigID(t, s, "a"), tc.a)
			s.Poke(sigID(t, s, "b"), tc.b)
			s.Poke(sigID(t, s, "x"), tc.x)
			s.Poke(sigID(t, s, "y"), tc.y)
			if err := s.Step(1); err != nil {
				t.Fatal(err)
			}
			wantM := tc.y
			if tc.a == tc.b {
				wantM = tc.x
			}
			if got := s.Peek(sigID(t, s, "m")); got != wantM {
				t.Errorf("a=%d b=%d: m = %d, want %d", tc.a, tc.b, got, wantM)
			}
			if got, want := s.Peek(sigID(t, s, "na")), (^tc.a&0xFF)&tc.b; got != want {
				t.Errorf("a=%d b=%d: na = %#x, want %#x", tc.a, tc.b, got, want)
			}
			if got, want := s.Peek(sigID(t, s, "s")), (tc.a+tc.b)&0xFF; got != want {
				t.Errorf("a=%d b=%d: s = %d, want %d", tc.a, tc.b, got, want)
			}
		}
	}
	// Both machines must agree on ops accounting: a fused pair still
	// counts as two evaluated ops.
	if f, p := fused.Stats().OpsEvaluated, plain.Stats().OpsEvaluated; f != p {
		t.Fatalf("OpsEvaluated changed under fusion: fused=%d plain=%d", f, p)
	}
}

// TestFusionSingleReaderGuard: a comparison with two readers (or one that
// is itself an output) must NOT be fused away — its value stays
// observable and correct.
func TestFusionSingleReaderGuard(t *testing.T) {
	src := `
circuit G :
  module G :
    input a : UInt<8>
    input b : UInt<8>
    output m : UInt<8>
    output e : UInt<1>
    node c = eq(a, b)
    m <= mux(c, a, b)
    e <= c
`
	d := compileSrc(t, src)
	s, err := NewFullCycle(d, false)
	if err != nil {
		t.Fatal(err)
	}
	s.Poke(sigID(t, s, "a"), 7)
	s.Poke(sigID(t, s, "b"), 7)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := s.Peek(sigID(t, s, "e")); got != 1 {
		t.Fatalf("e = %d, want 1 (cmp result must stay live)", got)
	}
	if got := s.Peek(sigID(t, s, "m")); got != 7 {
		t.Fatalf("m = %d, want 7", got)
	}
	s.Poke(sigID(t, s, "b"), 9)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := s.Peek(sigID(t, s, "e")); got != 0 {
		t.Fatalf("e = %d, want 0", got)
	}
	if got := s.Peek(sigID(t, s, "m")); got != 9 {
		t.Fatalf("m = %d, want 9", got)
	}
}

// TestFusionAblationBitExact is the ablation referee: on random circuits
// and random stimulus, every schedule engine with fusion enabled must
// match its NoFuse twin cycle for cycle.
func TestFusionAblationBitExact(t *testing.T) {
	seeds := 24
	cycles := 100
	if testing.Short() {
		seeds, cycles = 6, 50
	}
	var totalFused uint64
	for seed := int64(0); seed < int64(seeds); seed++ {
		c := randckt.Generate(seed+7000, randckt.DefaultConfig())
		d, err := netlist.Compile(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var sims []Simulator
		for _, cfg := range []Options{
			{Engine: EngineFullCycle},
			{Engine: EngineFullCycle, NoFuse: true},
			{Engine: EngineFullCycleOpt},
			{Engine: EngineFullCycleOpt, NoFuse: true},
			{Engine: EngineCCSS, Cp: 8},
			{Engine: EngineCCSS, Cp: 8, NoFuse: true},
			{Engine: EngineCCSSParallel, Cp: 8, Workers: 2},
			{Engine: EngineCCSSParallel, Cp: 8, Workers: 2, NoFuse: true},
		} {
			s, err := New(d, cfg)
			if err != nil {
				t.Fatalf("seed %d engine %v: %v", seed, cfg.Engine, err)
			}
			sims = append(sims, s)
		}
		rng := rand.New(rand.NewSource(seed * 17))
		for cyc := 0; cyc < cycles; cyc++ {
			if cyc == 0 || rng.Intn(3) == 0 {
				pokeRandom(rng, sims, d)
			}
			for _, s := range sims {
				if err := s.Step(1); err != nil {
					t.Fatalf("seed %d cyc %d: %v", seed, cyc, err)
				}
			}
			// Compare each fused engine against its NoFuse twin.
			for i := 0; i < len(sims); i += 2 {
				if f, p := archState(sims[i]), archState(sims[i+1]); f != p {
					t.Fatalf("seed %d cyc %d: engine pair %d diverged:\nfused:  %s\nnofuse: %s",
						seed, cyc, i/2, f, p)
				}
			}
		}
		totalFused += sims[0].Stats().FusedPairs
	}
	// The pass must actually fire somewhere across the corpus, or the
	// ablation proves nothing.
	if totalFused == 0 {
		t.Fatal("fusion never fired on any random circuit")
	}
}

// TestFusionScheduleInvariants checks structural invariants of a fused
// machine: no removed slot is reachable from the schedule, fused
// instructions carry the kFused tag, and partition ranges stay well
// formed under the CCSS remap.
func TestFusionScheduleInvariants(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		c := randckt.Generate(seed+9000, randckt.DefaultConfig())
		d, err := netlist.Compile(c)
		if err != nil {
			t.Fatal(err)
		}
		cc, err := NewCCSS(d, CCSSOptions{Cp: 8})
		if err != nil {
			t.Fatal(err)
		}
		m := cc.machine
		for i, e := range m.sched {
			switch e.kind {
			case seInstr:
				in := &m.instrs[e.idx]
				switch in.code {
				case IFCmpMux, IFNotAnd, IFAddTail, IFSubTail:
					if in.kind != kFused {
						t.Fatalf("seed %d: fused opcode without kFused tag at sched %d", seed, i)
					}
				default:
					if in.kind == kFused {
						t.Fatalf("seed %d: kFused tag on plain opcode %v at sched %d", seed, in.code, i)
					}
				}
			case seSkipIfZero, seSkipIfNonzero, seSkipIfZeroF, seSkipIfNonzeroF:
				if i+1+int(e.n) > len(m.sched) {
					t.Fatalf("seed %d: skip at %d jumps past schedule end (n=%d len=%d)",
						seed, i, e.n, len(m.sched))
				}
			}
		}
		for pi := range cc.parts {
			p := &cc.parts[pi]
			if p.schedStart > p.schedEnd || int(p.schedEnd) > len(m.sched) {
				t.Fatalf("seed %d: partition %d range [%d,%d) out of bounds (len %d)",
					seed, pi, p.schedStart, p.schedEnd, len(m.sched))
			}
		}
	}
}
