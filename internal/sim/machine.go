package sim

import (
	"fmt"
	"io"
	"math"
	stdbits "math/bits"

	"essent/internal/bits"
	"essent/internal/firrtl"
	"essent/internal/netlist"
	"essent/internal/sched"
)

// ICode is a specialized opcode for the compiled instruction stream.
type ICode uint8

const (
	ICopy ICode = iota
	IMux
	IMemRead
	IAdd
	ISub
	IMul
	IDiv
	IRem
	ILt
	ILeq
	IGt
	IGeq
	IEq
	INeq
	IShl
	IShr
	IDshl
	IDshr
	INeg
	INot
	IAnd
	IOr
	IXor
	IAndr
	IOrr
	IXorr
	ICat
	IBits
	IHead
	ITail
	// Fused superinstructions (interpreter-only; produced by the peephole
	// pass in fuse.go, never exported to the code generator).
	//
	// IFCmpMux folds a single-reader comparison into the mux it selects:
	// a/b are the comparison operands, p0 carries the comparison ICode,
	// c is the true-way offset and mem the false-way offset.
	IFCmpMux
	// IFNotAnd folds not(x) into and(not(x), y): a is x, b is y, and
	// dmask combines the not's and the and's result masks.
	IFNotAnd
	// IFAddTail / IFSubTail fold an add/sub into the tail that truncates
	// it: dmask is the tail's (narrower) result mask.
	IFAddTail
	IFSubTail
)

// instr is one compiled combinational operation. All operands are word
// offsets into the machine's value table (constants are materialized into
// the table at initialization).
type instr struct {
	code           ICode
	kind           uint8 // dispatch class, precomputed (see k* constants)
	wide           bool
	sa, sb, sc     bool
	a, b, c        int32
	dst            int32
	aw, bw, cw, dw int32
	p0, p1         int32
	mem            int32
	// dmask is the precomputed result mask (the effective output width's
	// low bits set; all ones for 64-bit-wide results).
	dmask uint64
	out   netlist.SignalID
}

// Dispatch kinds: the width/signedness class an instruction is routed to,
// decided once at compile time instead of per-evaluation flag checks.
const (
	// kNarrow: every operand and the result fit in one word and carry no
	// sign flag — extensions are compile-time no-ops and are hoisted.
	kNarrow uint8 = iota
	// kSigned: single-word but at least one operand is signed (the
	// general narrow path with sign extensions).
	kSigned
	// kWide: any operand or the result exceeds 64 bits.
	kWide
	// kFused: a superinstruction from the fusion pass (always narrow).
	kFused
)

// finishInstr precomputes the dispatch kind and result mask.
func finishInstr(in *instr) {
	in.wide = in.dw > 64 || in.aw > 64 || in.bw > 64 || in.cw > 64
	effW := int(in.dw)
	switch in.code {
	case IBits:
		effW = int(in.p0 - in.p1 + 1)
	case ITail:
		effW = int(in.aw - in.p0)
	}
	in.dmask = bits.Mask64(^uint64(0), effW)
	switch {
	case in.wide:
		in.kind = kWide
	case in.sa || in.sb || in.sc:
		in.kind = kSigned
	default:
		in.kind = kNarrow
	}
}

// memState is the backing store of one memory.
type memState struct {
	words []uint64
	nw    int32 // words per entry
	depth int32
	width int32
	// lowMask is the entry's low-word store mask, precomputed so pokes
	// don't rebuild it per call.
	lowMask uint64
}

// schedEntry is one step of the unified static schedule: a combinational
// instruction, an in-stream sink (display, check, memory-write capture),
// or a conditional skip implementing mux-way shadowing. Sinks are
// scheduled like ESSENT schedules state updates: at their topological
// position, after every producer and — thanks to the elision ordering
// edges — before any in-place state write that would clobber their
// operands.
type schedEntry struct {
	kind uint8
	idx  int32
	// n is the number of following entries to skip (skip kinds only).
	n int32
}

// Schedule entry kinds.
const (
	seInstr uint8 = iota
	seDisplay
	seCheck
	seMemWrite
	// seSkipIfZero skips the next n entries when t[idx] == 0 (guards a
	// mux's true-arm cone); seSkipIfNonzero guards the false arm.
	seSkipIfZero
	seSkipIfNonzero
	// seSkipIfZeroF / seSkipIfNonzeroF fuse a guard with the instruction
	// producing its selector: idx is an instruction index (not a table
	// offset); the instruction executes, then its dst decides the skip.
	seSkipIfZeroF
	seSkipIfNonzeroF
	// sePacked executes one packed bit-parallel step (idx indexes the
	// pack plan's pinstr stream; batch engine only — see pack.go).
	sePacked
)

// machine holds everything shared by the static-schedule engines.
type machine struct {
	d  *netlist.Design
	dg *netlist.DesignGraph

	t   []uint64 // value table
	off []int32  // word offset per signal
	nw  []int32  // words per signal
	// sigMask is each signal's low-word store mask (the low min(width,64)
	// bits set), precomputed so per-poke stores don't recompute it.
	sigMask []uint64

	constOff []int32 // word offset per constant-pool entry

	instrs  []instr
	instrOf []int32 // SignalID → index into instrs (-1 for non-comb)
	sched   []schedEntry
	// schedPosOf maps design-graph node IDs to schedule positions (-1 for
	// sources); used by the partitioner-driven engines.
	schedPosOf []int32

	mems []memState

	// regCopy lists registers needing a two-phase next→out copy (those
	// not update-elided).
	regCopy []int
	elided  []bool

	// fusedPairs counts producer→consumer pairs merged by the fusion
	// pass; fusedEntries counts schedule entries it removed (added back
	// into NumSchedEntries so the effective-activity denominator keeps
	// meaning "per-cycle work of an unconditional simulator").
	fusedPairs   int
	fusedEntries int

	// sink argument resolution, precomputed.
	memWrites []compiledMemWrite
	displays  []compiledDisplay
	checks    []compiledCheck

	out     io.Writer
	stats   Stats
	cycle   uint64
	stopErr error
	evalErr error

	scratch [4][]uint64
}

type compiledMemWrite struct {
	mem                  int32
	addr, en, data, mask operand
	// pending write buffer (captured at schedule position, applied at
	// commit so reads always see pre-edge contents).
	pendValid bool
	pendAddr  uint64
	pendData  []uint64
}

type compiledDisplay struct {
	en     operand
	format string
	args   []operand
}

type compiledCheck struct {
	en, pred operand
	msg      string
	stop     bool
	code     int
}

// operand is a resolved sink operand.
type operand struct {
	off    int32
	w      int32
	signed bool
}

func (m *machine) operandOf(a netlist.Arg) operand {
	if a.IsConst() {
		c := m.d.Consts[a.Const]
		return operand{off: m.constOff[a.Const], w: int32(c.Width), signed: c.Signed}
	}
	s := &m.d.Signals[a.Sig]
	return operand{off: m.off[a.Sig], w: int32(s.Width), signed: s.Signed}
}

func (m *machine) view(off, w int32) []uint64 {
	return m.t[off : off+int32(bits.Words(int(w)))]
}

// readU64 reads an operand's low word.
func (m *machine) readOperand(o operand) uint64 { return m.t[o.off] }

// machineConfig carries optional schedule transformations.
type machineConfig struct {
	// shadows enables conditional mux-way evaluation: arm cones are laid
	// out behind skip entries (§III-B).
	shadows *sched.MuxShadows
	// groups partitions the order into contiguous schedule groups; the
	// returned ranges give each group's [start, end) entry span. nil
	// treats the whole order as one group.
	groups [][]int
	// fuse enables the superinstruction peephole pass (fuse.go).
	// Engines that re-execute the instruction stream through their own
	// dispatch (event-driven) or export it (codegen) must leave it off.
	fuse bool
	// keepLive names signals the engine reads outside the instruction
	// stream (partition outputs compared for change detection); the
	// fusion pass must not eliminate their stores.
	keepLive []netlist.SignalID
}

// newMachine compiles the design with the default (ungrouped, unshadowed)
// schedule.
func newMachine(d *netlist.Design, dg *netlist.DesignGraph, order []int, elided []bool) (*machine, error) {
	m, _, err := newMachineCfg(d, dg, order, elided, machineConfig{})
	return m, err
}

// newMachineCfg compiles the design. elided[i] true means register i's
// next value writes register storage in place (no commit copy); order is
// the topological node order (including sink nodes) to schedule.
func newMachineCfg(d *netlist.Design, dg *netlist.DesignGraph, order []int,
	elided []bool, cfg machineConfig) (*machine, [][2]int32, error) {
	m := &machine{d: d, dg: dg, out: io.Discard, elided: elided}

	// Value-table layout. Signals are placed in evaluation order, group by
	// group, so each schedule group's (CCSS partition's) internal signals
	// occupy a contiguous cache-friendly span: inputs first (stable
	// prefix), then every group's members in schedule order with register
	// storage placed beside its writer, then any remaining signals, then
	// constants. Offsets are only ever read through m.off, so the
	// reordering is invisible outside the machine.
	m.off = make([]int32, len(d.Signals))
	m.nw = make([]int32, len(d.Signals))
	for i := range m.off {
		m.off[i] = -1
	}
	regOfNext := make([]int32, len(d.Signals))
	for i := range regOfNext {
		regOfNext[i] = -1
	}
	for ri := range d.Regs {
		regOfNext[d.Regs[ri].Next] = int32(ri)
	}
	total := int32(0)
	maxWords := 1
	place := func(sig int) {
		if m.off[sig] >= 0 {
			return
		}
		w := bits.Words(d.Signals[sig].Width)
		if w > maxWords {
			maxWords = w
		}
		m.off[sig] = total
		m.nw[sig] = int32(w)
		total += int32(w)
	}
	// Elided registers share storage: next aliases out, so next takes no
	// slot of its own (marked placed here, aliased after layout).
	for ri := range d.Regs {
		if elided != nil && elided[ri] {
			m.off[d.Regs[ri].Next] = 0
		}
	}
	for _, in := range d.Inputs {
		place(int(in))
	}
	layoutGroups := cfg.groups
	if layoutGroups == nil {
		layoutGroups = [][]int{order}
	}
	for _, group := range layoutGroups {
		for _, node := range group {
			if node >= len(d.Signals) {
				continue
			}
			if ri := regOfNext[node]; ri >= 0 {
				if elided != nil && elided[ri] {
					// In-place update: lay the register's storage where its
					// writer evaluates.
					place(int(d.Regs[ri].Out))
					continue
				}
				place(node)
				place(int(d.Regs[ri].Out)) // two-phase copy stays local
				continue
			}
			place(node)
		}
	}
	for i := range d.Signals {
		if ri := regOfNext[i]; ri >= 0 && elided != nil && elided[ri] {
			continue
		}
		place(i)
	}
	// Resolve elided aliases now that every out has a slot.
	for ri := range d.Regs {
		if elided != nil && elided[ri] {
			next, out := d.Regs[ri].Next, d.Regs[ri].Out
			m.off[next] = m.off[out]
			m.nw[next] = m.nw[out]
		}
	}
	m.constOff = make([]int32, len(d.Consts))
	for i := range d.Consts {
		w := bits.Words(d.Consts[i].Width)
		if w > maxWords {
			maxWords = w
		}
		m.constOff[i] = total
		total += int32(w)
	}
	m.t = make([]uint64, total)
	for i := range d.Consts {
		copy(m.t[m.constOff[i]:], d.Consts[i].Words)
	}
	m.sigMask = make([]uint64, len(d.Signals))
	for i := range d.Signals {
		m.sigMask[i] = bits.Mask64(^uint64(0), min(d.Signals[i].Width, 64))
	}
	for i := range m.scratch {
		m.scratch[i] = make([]uint64, maxWords+1)
	}

	// Memories.
	m.mems = make([]memState, len(d.Mems))
	for i := range d.Mems {
		nw := bits.Words(d.Mems[i].Width)
		m.mems[i] = memState{
			words: make([]uint64, nw*d.Mems[i].Depth),
			nw:    int32(nw),
			depth: int32(d.Mems[i].Depth),
			width: int32(d.Mems[i].Width),
			lowMask: bits.Mask64(^uint64(0),
				min(d.Mems[i].Width, 64)),
		}
	}

	// Compile sinks first so schedule construction can reference them.
	for i := range d.MemWrites {
		w := &d.MemWrites[i]
		ao := m.operandOf(w.Addr)
		if ao.w > 32 {
			return nil, nil, fmt.Errorf("sim: mem %s: write address wider than 32 bits",
				d.Mems[w.Mem].Name)
		}
		do := m.operandOf(w.Data)
		m.memWrites = append(m.memWrites, compiledMemWrite{
			mem:  int32(w.Mem),
			addr: ao, en: m.operandOf(w.En),
			data: do, mask: m.operandOf(w.Mask),
			pendData: make([]uint64, bits.Words(int(do.w))),
		})
	}
	for i := range d.Displays {
		disp := &d.Displays[i]
		cd := compiledDisplay{en: m.operandOf(disp.En), format: disp.Format}
		for _, a := range disp.Args {
			cd.args = append(cd.args, m.operandOf(a))
		}
		m.displays = append(m.displays, cd)
	}
	for i := range d.Checks {
		c := &d.Checks[i]
		m.checks = append(m.checks, compiledCheck{
			en: m.operandOf(c.En), pred: m.operandOf(c.Pred),
			msg: c.Msg, stop: c.Stop, code: c.Code,
		})
	}

	// Unified schedule in topological order, group by group. Mux-arm
	// cones (when shadows are enabled) are emitted behind skip entries at
	// their owning mux's position.
	m.instrOf = make([]int32, len(d.Signals))
	for i := range m.instrOf {
		m.instrOf[i] = -1
	}
	m.schedPosOf = make([]int32, dg.G.Len())
	for i := range m.schedPosOf {
		m.schedPosOf[i] = -1
	}
	groups := cfg.groups
	if groups == nil {
		groups = [][]int{order}
	}
	ranges := make([][2]int32, len(groups))
	for gi, group := range groups {
		ranges[gi][0] = int32(len(m.sched))
		for _, node := range group {
			if err := m.emitNode(node, cfg.shadows, false); err != nil {
				return nil, nil, err
			}
		}
		ranges[gi][1] = int32(len(m.sched))
	}

	// Registers needing a commit copy.
	for ri := range d.Regs {
		if elided == nil || !elided[ri] {
			m.regCopy = append(m.regCopy, ri)
		}
	}

	if cfg.fuse {
		ranges = m.fuseSchedule(cfg.keepLive, ranges)
		m.stats.FusedPairs = uint64(m.fusedPairs)
	}

	m.initState()
	return m, ranges, nil
}

// emitNode appends the schedule entries for one design-graph node.
// Shadowed nodes are skipped in the outer walk (force false) and emitted
// within their owning mux's arm (force true). Muxes with claimed arms
// expand into [skip-if-zero, T cone, skip-if-nonzero, F cone, mux].
func (m *machine) emitNode(node int, shadows *sched.MuxShadows, force bool) error {
	d := m.d
	if node >= len(d.Signals) {
		idx := int32(m.dg.Index[node])
		var kind uint8
		switch m.dg.Kind[node] {
		case netlist.NodeMemWrite:
			kind = seMemWrite
		case netlist.NodeDisplay:
			kind = seDisplay
		case netlist.NodeCheck:
			kind = seCheck
		default:
			return nil
		}
		m.schedPosOf[node] = int32(len(m.sched))
		m.sched = append(m.sched, schedEntry{kind: kind, idx: idx})
		return nil
	}
	s := &d.Signals[node]
	if s.Kind != netlist.KComb && s.Kind != netlist.KMemRead {
		return nil // inputs and reg outputs need no schedule step
	}
	if shadows != nil && !force && shadows.Shadowed[netlist.SignalID(node)] {
		return nil // emitted inside its owning mux's arm
	}
	// Compile the instruction (once).
	if m.instrOf[node] < 0 {
		var in instr
		var err error
		switch s.Kind {
		case netlist.KComb:
			in, err = m.compileOp(s.Op)
			if err != nil {
				return err
			}
		case netlist.KMemRead:
			r := &d.MemReads[s.MemRead]
			ao := m.operandOf(r.Addr)
			if ao.w > 32 {
				return fmt.Errorf("sim: mem %s: address wider than 32 bits",
					d.Mems[r.Mem].Name)
			}
			in = instr{
				code: IMemRead, out: netlist.SignalID(node),
				dst: m.off[node], dw: int32(s.Width),
				a: ao.off, aw: ao.w,
				b: -1, c: -1,
				mem: int32(r.Mem),
			}
			finishInstr(&in)
		}
		m.instrOf[node] = int32(len(m.instrs))
		m.instrs = append(m.instrs, in)
	}
	// Mux-way expansion.
	if shadows != nil && s.Kind == netlist.KComb && s.Op.Kind == netlist.OMux {
		if arms, ok := shadows.Arms[netlist.SignalID(node)]; ok {
			selOff := m.operandOf(s.Op.Args[0]).off
			emitArm := func(kind uint8, cone []netlist.SignalID) error {
				ctl := len(m.sched)
				m.sched = append(m.sched, schedEntry{kind: kind, idx: selOff})
				for _, x := range cone {
					if err := m.emitNode(int(x), shadows, true); err != nil {
						return err
					}
				}
				m.sched[ctl].n = int32(len(m.sched) - ctl - 1)
				return nil
			}
			if len(arms.T) > 0 {
				if err := emitArm(seSkipIfZero, arms.T); err != nil {
					return err
				}
			}
			if len(arms.F) > 0 {
				if err := emitArm(seSkipIfNonzero, arms.F); err != nil {
					return err
				}
			}
		}
	}
	m.schedPosOf[node] = int32(len(m.sched))
	m.sched = append(m.sched, schedEntry{kind: seInstr, idx: m.instrOf[node]})
	return nil
}

// initState loads register initial values (memories start zeroed).
func (m *machine) initState() {
	for ri := range m.d.Regs {
		r := &m.d.Regs[ri]
		out := m.view(m.off[r.Out], int32(m.d.Signals[r.Out].Width))
		bits.Copy(out, r.Init)
	}
}

// compileOp lowers one netlist op to an instruction.
func (m *machine) compileOp(op *netlist.Op) (instr, error) {
	d := m.d
	outSig := &d.Signals[op.Out]
	in := instr{
		out: op.Out,
		dst: m.off[op.Out],
		dw:  int32(outSig.Width),
		p0:  int32(op.P0),
		p1:  int32(op.P1),
		a:   -1, b: -1, c: -1,
	}
	setArg := func(i int, a netlist.Arg) {
		o := m.operandOf(a)
		switch i {
		case 0:
			in.a, in.aw, in.sa = o.off, o.w, o.signed
		case 1:
			in.b, in.bw, in.sb = o.off, o.w, o.signed
		case 2:
			in.c, in.cw, in.sc = o.off, o.w, o.signed
		}
	}
	for i, a := range op.Args {
		setArg(i, a)
	}
	switch op.Kind {
	case netlist.OCopy:
		in.code = ICopy
	case netlist.OMux:
		in.code = IMux
	case netlist.OPrim:
		code, ok := primToICode[op.Prim]
		if !ok {
			return instr{}, fmt.Errorf("sim: unsupported primop %v", op.Prim)
		}
		in.code = code
		if op.Prim == firrtl.OpDshl || op.Prim == firrtl.OpDshr {
			if in.bw > 20 {
				return instr{}, fmt.Errorf("sim: dynamic shift amount wider than 20 bits")
			}
		}
	}
	finishInstr(&in)
	return in, nil
}

var primToICode = map[firrtl.PrimOp]ICode{
	firrtl.OpAdd: IAdd, firrtl.OpSub: ISub, firrtl.OpMul: IMul,
	firrtl.OpDiv: IDiv, firrtl.OpRem: IRem,
	firrtl.OpLt: ILt, firrtl.OpLeq: ILeq, firrtl.OpGt: IGt, firrtl.OpGeq: IGeq,
	firrtl.OpEq: IEq, firrtl.OpNeq: INeq,
	firrtl.OpShl: IShl, firrtl.OpShr: IShr,
	firrtl.OpDshl: IDshl, firrtl.OpDshr: IDshr,
	firrtl.OpCvt: ICopy, firrtl.OpNeg: INeg, firrtl.OpNot: INot,
	firrtl.OpAnd: IAnd, firrtl.OpOr: IOr, firrtl.OpXor: IXor,
	firrtl.OpAndr: IAndr, firrtl.OpOrr: IOrr, firrtl.OpXorr: IXorr,
	firrtl.OpCat: ICat, firrtl.OpBits: IBits,
	firrtl.OpHead: IHead, firrtl.OpTail: ITail,
}

// ext sign- or zero-extends a stored (masked) narrow value to 64 bits.
func ext(v uint64, w int32, signed bool) uint64 {
	if signed {
		return bits.Sext64(v, int(w))
	}
	return v
}

// exec evaluates one instruction through the compile-time dispatch kind.
// It is the entry point for engines that execute instructions outside the
// schedule walk (event-driven); the schedule engines inline the same
// dispatch in runRange.
func (m *machine) exec(in *instr) {
	m.stats.OpsEvaluated++
	switch in.kind {
	case kNarrow:
		m.execNarrow(in)
	case kSigned:
		m.execSigned(in)
	case kFused:
		m.stats.OpsEvaluated++
		m.execFused(in)
	default:
		m.execWide(in)
	}
}

// execSigned evaluates a single-word instruction with at least one signed
// operand: the general narrow path, with sign extensions applied.
func (m *machine) execSigned(in *instr) {
	t := m.t
	switch in.code {
	case ICopy:
		t[in.dst] = bits.Mask64(ext(t[in.a], in.aw, in.sa), int(in.dw))
	case IMux:
		if t[in.a] != 0 {
			t[in.dst] = bits.Mask64(ext(t[in.b], in.bw, in.sb), int(in.dw))
		} else {
			t[in.dst] = bits.Mask64(ext(t[in.c], in.cw, in.sc), int(in.dw))
		}
	case IMemRead:
		ms := &m.mems[in.mem]
		addr := t[in.a]
		if addr < uint64(ms.depth) {
			t[in.dst] = ms.words[int32(addr)*ms.nw]
		} else {
			t[in.dst] = 0
		}
	case IAdd:
		t[in.dst] = bits.Mask64(ext(t[in.a], in.aw, in.sa)+ext(t[in.b], in.bw, in.sb), int(in.dw))
	case ISub:
		t[in.dst] = bits.Mask64(ext(t[in.a], in.aw, in.sa)-ext(t[in.b], in.bw, in.sb), int(in.dw))
	case IMul:
		t[in.dst] = bits.Mask64(ext(t[in.a], in.aw, in.sa)*ext(t[in.b], in.bw, in.sb), int(in.dw))
	case IDiv:
		if in.sa {
			a := int64(bits.Sext64(t[in.a], int(in.aw)))
			b := int64(bits.Sext64(t[in.b], int(in.bw)))
			var q int64
			switch {
			case b == 0:
				q = 0
			case a == math.MinInt64 && b == -1:
				q = a // wraps, masked below
			default:
				q = a / b
			}
			t[in.dst] = bits.Mask64(uint64(q), int(in.dw))
		} else {
			b := t[in.b]
			if b == 0 {
				t[in.dst] = 0
			} else {
				t[in.dst] = bits.Mask64(t[in.a]/b, int(in.dw))
			}
		}
	case IRem:
		if in.sa {
			a := int64(bits.Sext64(t[in.a], int(in.aw)))
			b := int64(bits.Sext64(t[in.b], int(in.bw)))
			var r int64
			switch {
			case b == 0:
				r = a
			case a == math.MinInt64 && b == -1:
				r = 0
			default:
				r = a % b
			}
			t[in.dst] = bits.Mask64(uint64(r), int(in.dw))
		} else {
			b := t[in.b]
			if b == 0 {
				t[in.dst] = bits.Mask64(t[in.a], int(in.dw))
			} else {
				t[in.dst] = bits.Mask64(t[in.a]%b, int(in.dw))
			}
		}
	case ILt:
		t[in.dst] = b2u(cmp64(t[in.a], in.aw, t[in.b], in.bw, in.sa) < 0)
	case ILeq:
		t[in.dst] = b2u(cmp64(t[in.a], in.aw, t[in.b], in.bw, in.sa) <= 0)
	case IGt:
		t[in.dst] = b2u(cmp64(t[in.a], in.aw, t[in.b], in.bw, in.sa) > 0)
	case IGeq:
		t[in.dst] = b2u(cmp64(t[in.a], in.aw, t[in.b], in.bw, in.sa) >= 0)
	case IEq:
		t[in.dst] = b2u(ext(t[in.a], in.aw, in.sa) == ext(t[in.b], in.bw, in.sb))
	case INeq:
		t[in.dst] = b2u(ext(t[in.a], in.aw, in.sa) != ext(t[in.b], in.bw, in.sb))
	case IShl:
		t[in.dst] = bits.Mask64(t[in.a]<<uint(in.p0), int(in.dw))
	case IShr:
		t[in.dst] = shr64(t[in.a], in.aw, in.p0, in.sa, in.dw)
	case IDshl:
		t[in.dst] = bits.Mask64(t[in.a]<<uint(t[in.b]), int(in.dw))
	case IDshr:
		t[in.dst] = shr64(t[in.a], in.aw, int32(t[in.b]), in.sa, in.dw)
	case INeg:
		t[in.dst] = bits.Mask64(-ext(t[in.a], in.aw, in.sa), int(in.dw))
	case INot:
		t[in.dst] = bits.Mask64(^t[in.a], int(in.dw))
	case IAnd:
		t[in.dst] = bits.Mask64(ext(t[in.a], in.aw, in.sa)&ext(t[in.b], in.bw, in.sb), int(in.dw))
	case IOr:
		t[in.dst] = bits.Mask64(ext(t[in.a], in.aw, in.sa)|ext(t[in.b], in.bw, in.sb), int(in.dw))
	case IXor:
		t[in.dst] = bits.Mask64(ext(t[in.a], in.aw, in.sa)^ext(t[in.b], in.bw, in.sb), int(in.dw))
	case IAndr:
		t[in.dst] = b2u(t[in.a] == bits.Mask64(^uint64(0), int(in.aw)))
	case IOrr:
		t[in.dst] = b2u(t[in.a] != 0)
	case IXorr:
		t[in.dst] = uint64(popcount(t[in.a])) & 1
	case ICat:
		t[in.dst] = bits.Mask64(t[in.a]<<uint(in.bw)|t[in.b], int(in.dw))
	case IBits:
		t[in.dst] = bits.Mask64(t[in.a]>>uint(in.p1), int(in.p0-in.p1+1))
	case IHead:
		t[in.dst] = t[in.a] >> uint(in.aw-in.p0)
	case ITail:
		t[in.dst] = bits.Mask64(t[in.a], int(in.aw-in.p0))
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func popcount(x uint64) int { return stdbits.OnesCount64(x) }

func cmp64(a uint64, aw int32, b uint64, bw int32, signed bool) int {
	if signed {
		ia, ib := int64(bits.Sext64(a, int(aw))), int64(bits.Sext64(b, int(bw)))
		switch {
		case ia < ib:
			return -1
		case ia > ib:
			return 1
		}
		return 0
	}
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func shr64(a uint64, aw, n int32, signed bool, dw int32) uint64 {
	if n >= aw {
		if signed && a>>(uint(aw)-1)&1 == 1 {
			return bits.Mask64(^uint64(0), int(dw))
		}
		return 0
	}
	if signed {
		v := int64(bits.Sext64(a, int(aw))) >> uint(n)
		return bits.Mask64(uint64(v), int(dw))
	}
	return bits.Mask64(a>>uint(n), int(dw))
}
