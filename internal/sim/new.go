package sim

import (
	"fmt"

	"essent/internal/netlist"
)

// Options selects and configures an engine.
type Options struct {
	Engine Engine
	// Cp is the CCSS partitioning threshold (0 = paper default 8).
	Cp int
	// Workers selects the goroutine count for EngineCCSSParallel.
	// Explicit values are honored exactly (no cap); 0 selects the
	// default of GOMAXPROCS capped at 8.
	Workers int
	// NoFuse disables superinstruction fusion on the schedule-based
	// engines (ablation knob; ignored by EngineEventDriven, which never
	// fuses).
	NoFuse bool
}

// New constructs the requested simulation engine for a design. The caller
// is responsible for applying netlist-level optimization passes first
// when the engine's design point calls for them (see netlist.Optimize).
func New(d *netlist.Design, opts Options) (Simulator, error) {
	switch opts.Engine {
	case EngineEventDriven:
		return NewEventDriven(d)
	case EngineFullCycle:
		return NewFullCycleOpts(d, false, opts.NoFuse)
	case EngineFullCycleOpt:
		return NewFullCycleOpts(d, true, opts.NoFuse)
	case EngineCCSS:
		return NewCCSS(d, CCSSOptions{Cp: opts.Cp, NoFuse: opts.NoFuse})
	case EngineCCSSParallel:
		return NewParallelCCSS(d, ParallelOptions{
			Cp: opts.Cp, Workers: opts.Workers, NoFuse: opts.NoFuse})
	default:
		return nil, fmt.Errorf("sim: unknown engine %v", opts.Engine)
	}
}
