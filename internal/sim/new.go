package sim

import (
	"fmt"

	"essent/internal/netlist"
	"essent/internal/verify"
)

// Options selects and configures an engine.
type Options struct {
	Engine Engine
	// Cp is the CCSS partitioning threshold (0 = paper default 8).
	Cp int
	// Workers selects the goroutine count for EngineCCSSParallel.
	// Explicit values are honored exactly (no cap); 0 selects the
	// default of GOMAXPROCS capped at 8.
	Workers int
	// NoFuse disables superinstruction fusion on the schedule-based
	// engines (ablation knob; ignored by EngineEventDriven, which never
	// fuses).
	NoFuse bool
	// Verify selects static-verification enforcement for every engine
	// (verify.Strict, the zero value, fails construction on any proven
	// violation; Warn prints and continues; Off skips the checks).
	Verify verify.Mode
	// NoVec disables instance vectorization on EngineCCSSVec (the
	// ablation switch: compile and run as plain scalar CCSS).
	NoVec bool
	// MaxVecLanes caps instances per equivalence class on EngineCCSSVec
	// (2..64; 0 = 64).
	MaxVecLanes int
	// MinVecLanes is the vectorizer's cost-model floor on EngineCCSSVec:
	// classes that pack fewer lanes than the floor fall back to the
	// scalar path (0 = the tuned default of 8; 2 accepts every class).
	MinVecLanes int
	// NoSA ablates static activity analysis during engine compilation
	// (vectorizer toggle-condition signatures and pack widening).
	NoSA bool
}

// New constructs the requested simulation engine for a design. The caller
// is responsible for applying netlist-level optimization passes first
// when the engine's design point calls for them (see netlist.Optimize).
func New(d *netlist.Design, opts Options) (Simulator, error) {
	switch opts.Engine {
	case EngineEventDriven:
		return NewEventDrivenVerify(d, opts.Verify)
	case EngineFullCycle:
		return NewFullCycleVerify(d, false, opts.NoFuse, opts.Verify)
	case EngineFullCycleOpt:
		return NewFullCycleVerify(d, true, opts.NoFuse, opts.Verify)
	case EngineCCSS:
		return NewCCSS(d, CCSSOptions{Cp: opts.Cp, NoFuse: opts.NoFuse,
			Verify: opts.Verify})
	case EngineCCSSParallel:
		return NewParallelCCSS(d, ParallelOptions{
			Cp: opts.Cp, Workers: opts.Workers, NoFuse: opts.NoFuse,
			Verify: opts.Verify})
	case EngineCCSSVec:
		return NewVecCCSS(d, VecCCSSOptions{
			Cp: opts.Cp, Workers: opts.Workers, NoFuse: opts.NoFuse,
			MaxLanes: opts.MaxVecLanes, MinLanes: opts.MinVecLanes,
			NoVec: opts.NoVec, NoSA: opts.NoSA,
			Verify: opts.Verify})
	default:
		return nil, fmt.Errorf("sim: unknown engine %v", opts.Engine)
	}
}
