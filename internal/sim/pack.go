package sim

import (
	"fmt"

	"essent/internal/bits"
	"essent/internal/netlist"
	"essent/internal/sa"
	"essent/internal/verify"
)

// Bit-packing compilation pass (word-packed bit-parallel kernels): most
// control-path signals are 1 bit wide, yet the batch engine stores one
// value per uint64 slot per lane. This pass assigns every 1-bit unsigned
// signal a slot in a packed lane-transposed table where bit l of the
// slot's word holds lane l's value, and rewrites eligible instruction
// sequences — AND/OR/XOR/NOT, mux by a 1-bit select, comparisons of
// 1-bit operands, and the fused pairs from fuse.go — into packed opcodes
// that evaluate all ≤64 lanes of an operation with a single word op
// (mux as (s&a)|(^s&b) on whole words).
//
// The pass is an overlay: the base machine's instruction stream and
// schedule are untouched (the sequential CCSS reference, checkpoints,
// and the codegen export all keep the scalar view). BatchCCSS executes
// the rewritten schedule instead.
//
// Packed slots are PERSISTENTLY COHERENT: the packed table is shared
// engine state (one word per slot, maintained across cycles), not
// per-evaluation scratch. The invariant is that at every spec boundary,
// bit l of a slot equals the value lane l would observe on the unpacked
// row — for every live lane, including lanes idle this cycle. The
// activity argument makes this sound: a lane absent from a partition's
// active mask has had no input change since its last evaluation (change
// detection would have woken it), so its stale slot bits are exactly
// what a re-evaluation would produce. Coherence is maintained at the
// writer, so consumers never re-gather:
//
//   - a packed destination is written whole-word at every evaluation of
//     its partition (idle lanes recompute their unchanged values);
//   - a slot whose offset is produced by an instruction that stays
//     unpacked gets ONE pPack gather inserted immediately after that
//     producer, masked to the lanes being evaluated (a fused skip whose
//     instruction needs a gather is de-fused into instr + gather +
//     plain skip);
//   - a non-elided register output slot is refreshed by an O(1) masked
//     word merge at commit (out = out&^m | next&m, m = the lanes whose
//     writer partition ran), with the next-value slot forced into the
//     plan so the merge has a coherent source;
//   - an input slot is refreshed bit-wise by the poke path;
//   - an elided register's storage is the one self-referential state
//     update (out = f(out, ...)), so a packed instruction writing it
//     merges under the active-lane mask instead of overwriting — a
//     whole-word write would advance idle lanes' architectural state;
//   - engine-wide transitions (construction, Reset, lane restore) dense-
//     refresh slots from the rows they mirror.
//
// A packed destination that is row-required (design outputs, register
// storage, sink operands, skip guards, operands of any unpacked
// instruction) scatters its result to the unpacked row in the same step,
// masked to the active lanes, so checkpoints, per-lane Stats, pokes and
// peeks stay bit-exact. Destinations read only by packed instructions
// skip both the scatter and the row — partition-output change detection
// for those runs on the slot words directly (BatchCCSS.outSlot).
//
// An instruction whose operand has no maintainer (not a constant, not
// instruction-produced inside the partitioned schedule, not an input,
// not a mergeable register output) is simply not packed.
//
// verifyPackPlan (the SM-PACK rules, run at BatchCCSS construction)
// re-derives the row-required set and the maintainer classification and
// replays the rewritten schedule to prove slot assignment, width
// classification, row coherence, maintenance, and span nesting
// independently of the pass that built the plan.

// pcode is a packed opcode: one uint64 op evaluates every lane's 1-bit
// value at once (bit l of a packed word is lane l's value).
type pcode uint8

const (
	// pPack gathers rowOff's unpacked lane-major row into packed slot
	// dst, masked to the lanes under evaluation.
	pPack pcode = iota
	pCopy       // dst = a
	pNot        // dst = ^a
	pAnd        // dst = a & b
	pOr         // dst = a | b
	pXor        // dst = a ^ b  (also 1-bit add/sub mod 2)
	pEq         // dst = ^(a ^ b)
	pNeq        // dst = a ^ b
	pLt         // dst = ^a & b
	pLeq        // dst = ^a | b
	pGt         // dst = a &^ b
	pGeq        // dst = a | ^b
	pMux        // dst = (a & b) | (^a & c)
	pNotAnd     // dst = ^a & b           (from IFNotAnd, weight 2)
	pCmpMux     // sel = cmp(a, b); dst = (sel & c) | (^sel & m)  (weight 2)
)

// pinstr is one step of the packed program.
type pinstr struct {
	code pcode
	cmp  ICode // pCmpMux comparison code
	// a, b, c, m are packed-slot operands (-1 unused).
	a, b, c, m int32
	// dst is the packed destination slot.
	dst int32
	// rowOff is the unpacked table offset this step touches: pPack's
	// gather source, or the row a packed op scatters its result to
	// (-1 elides the scatter — the row goes stale, like a fused-away
	// slot).
	rowOff int32
	// weight is the op's contribution to per-lane OpsEvaluated (0 for
	// transitions, 1 for plain ops, 2 for fused pairs) so packed Stats
	// stay bit-exact with the sequential engine.
	weight uint8
	// maskedDst merges the destination word under the active-lane mask
	// instead of overwriting it. Required when dst is an elided
	// register's storage: that update is self-referential state, and a
	// whole-word write would advance lanes that are idle this cycle.
	maskedDst bool
	out       netlist.SignalID // originating signal (diagnostics)
}

// packRegMerge names the packed slots a non-elided register's commit
// merges: out = out&^m | next&m for the lanes that marked the register.
type packRegMerge struct {
	out, next int32
}

// packPlan is the compiled overlay the batch engine executes in place of
// the base machine's schedule.
type packPlan struct {
	nslots int32
	// slotOf maps table word offsets to packed slots (-1 unpacked);
	// offOf is the inverse.
	slotOf []int32
	offOf  []int32
	// constInit is the packed table's initial image: const slots hold
	// the constant bit broadcast to all 64 lane bits, everything else 0.
	constInit []uint64
	constSlot []bool

	pins   []pinstr
	sched  []schedEntry
	ranges [][2]int32

	// packedInstr marks base-machine instruction indices rewritten into
	// packed form (their seInstr entries became sePacked).
	packedInstr []bool
	// slotPackedDst marks slots written by a packed instruction's
	// destination (the engine compares these word-wise for partition-
	// output change detection).
	slotPackedDst []bool
	// partPacked marks partitions containing packed entries. The pooled
	// engine gives each such partition to a single worker for ALL lanes:
	// packed words are shared state, and two lane groups writing one
	// word would race.
	partPacked []bool
	// regSlot maps register index to its commit-merge slots ({-1,-1}
	// when the register output is not packed).
	regSlot []packRegMerge
	// saWidened records that the plan was built with the static-activity
	// widening table; the SM-PACK verifier re-derives the same table.
	saWidened bool

	// Pass statistics (PackStats; kept out of Stats so per-lane counters
	// stay bit-exact with the sequential engine).
	packedOps     int
	packsInserted int
	elidedRows    int
}

// PackStats summarizes the bit-packing pass for benchmarks and docs.
type PackStats struct {
	// PackedOps is the number of instructions rewritten into packed
	// word-parallel form; Slots the packed table's size in words.
	PackedOps int
	Slots     int
	// PacksInserted counts pPack transition ops; ElidedRows counts
	// packed destinations whose unpacked-row scatter was elided.
	PacksInserted int
	ElidedRows    int
}

// packOffsetClass computes, per table word offset, the width and
// unsignedness of the owning signal or constant. Fused instructions
// carry stale operand widths after the fusion rewrite, so packability is
// decided against the table layout, not the instruction fields.
func packOffsetClass(m *machine) (offW []int32, offU []bool) {
	offW = make([]int32, len(m.t))
	offU = make([]bool, len(m.t))
	for i := range m.d.Signals {
		if off := m.off[i]; off >= 0 && m.nw[i] == 1 {
			offW[off] = int32(m.d.Signals[i].Width)
			offU[off] = !m.d.Signals[i].Signed
		}
	}
	for i := range m.d.Consts {
		c := &m.d.Consts[i]
		if bits.Words(c.Width) == 1 {
			offW[m.constOff[i]] = int32(c.Width)
			offU[m.constOff[i]] = !c.Signed
		}
	}
	return offW, offU
}

// saPackBits computes the static-activity widening table for the packing
// pass: per table word offset, whether the stored value provably never
// exceeds one bit even though the declaration is wider. Beyond declared
// 1-bit offsets (which packOffsetClass already admits), this covers
// unsigned signals internal/sa proves to a one-bit effective width and
// single-word unsigned constants whose value is 0 or 1. Inputs need no
// exclusion — the analysis cannot narrow them below their declared width
// (pokes may drive any declared value), so only genuinely 1-bit inputs
// ever enter the packed table. Returns nil (no widening) when the
// analysis fails.
//
// Soundness note for fault injection: flipping a high row bit of a
// widened offset puts the row outside the proven range, and the packed
// mirror truncates the corrupted value to bit 0. Runs stay deterministic
// (identical fault plans yield identical executions) but an injected
// fault's visible effect may differ from the unpacked engines' — the
// same caveat activity masks already carry.
func saPackBits(m *machine) []bool {
	r, err := sa.Analyze(m.d, sa.Options{NoGuards: true})
	if err != nil {
		return nil
	}
	sa1 := make([]bool, len(m.t))
	for i := range m.d.Signals {
		if off := m.off[i]; off >= 0 && m.nw[i] == 1 &&
			r.ProvenOneBit(netlist.SignalID(i)) {
			sa1[off] = true
		}
	}
	for i := range m.d.Consts {
		c := &m.d.Consts[i]
		if c.Signed || bits.Words(c.Width) != 1 {
			continue
		}
		if c.Words[0] <= 1 {
			sa1[m.constOff[i]] = true
		}
	}
	return sa1
}

// packablePcode classifies one instruction: the packed opcode it lowers
// to, or ok=false. Eligible ops have a 1-bit result and 1-bit unsigned
// operands; on unfused narrow instructions the operand widths are exact,
// on fused ones the table-offset classes decide.
//
// sa1 (nil when static activity analysis is ablated) widens eligibility
// to proven-1-bit offsets, but only for ops whose scalar result depends
// solely on operand *values* when those values are 0/1 — copy, the or/
// xor reductions, tail, neg, not, the bitwise/arithmetic-mod-2 pairs,
// the unsigned comparisons, and mux. Ops whose semantics read the
// declared operand width itself — andr (all-ones test against the
// declared width), bit extracts and head (shift distances derived from
// declared widths) — keep the exact-width requirement: a proven-1-bit
// value in a wider declaration would make the packed rewrite compute a
// different function.
func packablePcode(in *instr, offW []int32, offU []bool, sa1 []bool) (pcode, bool) {
	saOne := func(off int32) bool {
		return sa1 != nil && off >= 0 && sa1[off]
	}
	oneBit := func(off int32) bool {
		return off >= 0 && (offW[off] == 1 && offU[off] || saOne(off))
	}
	// opOne: operand holds a 1-bit value — exactly declared so, or proven.
	opOne := func(off int32, w int32) bool {
		return w == 1 || saOne(off)
	}
	// A kNarrow instruction's operands are unsigned by kind, but the
	// destination signal may still be declared signed — its table offset
	// class decides, same as fused operands. A proven-1-bit destination
	// with a wider dmask is sound: the proof says every reachable scalar
	// result already fits in bit 0.
	if (in.dmask != 1 || !(offW[in.dst] == 1 && offU[in.dst])) && !saOne(in.dst) {
		return 0, false
	}
	switch in.kind {
	case kNarrow:
		switch in.code {
		case IAndr, IBits, IHead:
			// Width-dependent semantics: identity only at declared 1 bit.
			if in.aw == 1 {
				return pCopy, true
			}
		case ICopy, INeg, IOrr, IXorr, ITail:
			// All identity on a 1-bit value: -a&1 = a, the or/xor
			// reductions of {0,1} are the value, and tail keeps bit 0.
			if opOne(in.a, in.aw) {
				return pCopy, true
			}
		case INot:
			if opOne(in.a, in.aw) {
				return pNot, true
			}
		case IAnd, IMul:
			if opOne(in.a, in.aw) && opOne(in.b, in.bw) {
				return pAnd, true
			}
		case IOr:
			if opOne(in.a, in.aw) && opOne(in.b, in.bw) {
				return pOr, true
			}
		case IXor, IAdd, ISub:
			// 1-bit add/sub are addition mod 2.
			if opOne(in.a, in.aw) && opOne(in.b, in.bw) {
				return pXor, true
			}
		case IEq:
			if opOne(in.a, in.aw) && opOne(in.b, in.bw) {
				return pEq, true
			}
		case INeq:
			if opOne(in.a, in.aw) && opOne(in.b, in.bw) {
				return pNeq, true
			}
		case ILt:
			if opOne(in.a, in.aw) && opOne(in.b, in.bw) {
				return pLt, true
			}
		case ILeq:
			if opOne(in.a, in.aw) && opOne(in.b, in.bw) {
				return pLeq, true
			}
		case IGt:
			if opOne(in.a, in.aw) && opOne(in.b, in.bw) {
				return pGt, true
			}
		case IGeq:
			if opOne(in.a, in.aw) && opOne(in.b, in.bw) {
				return pGeq, true
			}
		case IMux:
			if opOne(in.a, in.aw) && opOne(in.b, in.bw) && opOne(in.c, in.cw) {
				return pMux, true
			}
		}
	case kFused:
		switch in.code {
		case IFNotAnd:
			if oneBit(in.a) && oneBit(in.b) {
				return pNotAnd, true
			}
		case IFCmpMux:
			if oneBit(in.a) && oneBit(in.b) && oneBit(in.c) && oneBit(in.mem) {
				return pCmpMux, true
			}
		case IFAddTail, IFSubTail:
			if oneBit(in.a) && oneBit(in.b) {
				return pXor, true
			}
		}
	}
	return 0, false
}

// engineLiveOffsets marks the table slots read outside the instruction
// stream: design outputs, register storage, inputs, sink operands, plain
// skip guards, and the engine's keepLive set. Shared by the fusion pass
// (stores to these can never be eliminated) and the packing pass (their
// rows must stay coherent).
func (m *machine) engineLiveOffsets(keepLive []netlist.SignalID) []bool {
	d := m.d
	live := make([]bool, len(m.t))
	mark := func(off int32) {
		if off >= 0 {
			live[off] = true
		}
	}
	for _, o := range d.Outputs {
		mark(m.off[o])
	}
	for ri := range d.Regs {
		mark(m.off[d.Regs[ri].Next])
		mark(m.off[d.Regs[ri].Out])
	}
	for _, in := range d.Inputs {
		mark(m.off[in])
	}
	for i := range m.memWrites {
		w := &m.memWrites[i]
		mark(w.addr.off)
		mark(w.en.off)
		mark(w.data.off)
		mark(w.mask.off)
	}
	for i := range m.displays {
		mark(m.displays[i].en.off)
		for _, a := range m.displays[i].args {
			mark(a.off)
		}
	}
	for i := range m.checks {
		mark(m.checks[i].en.off)
		mark(m.checks[i].pred.off)
	}
	for _, e := range m.sched {
		if e.kind == seSkipIfZero || e.kind == seSkipIfNonzero {
			mark(e.idx)
		}
	}
	for _, sig := range keepLive {
		mark(m.off[sig])
	}
	return live
}

// packRowRequired computes the row-required set: offsets whose unpacked
// rows must stay coherent under packing — the engine-live set plus every
// operand of an instruction that stays unpacked. Cross-partition packed
// reads need no rows: packed slots are persistently coherent, so a
// consumer reads the producer's slot directly.
func packRowRequired(m *machine, live []bool, willPack []bool) []bool {
	rowReq := append([]bool(nil), live...)
	mark := func(off int32) {
		if off >= 0 && int(off) < len(rowReq) {
			rowReq[off] = true
		}
	}
	var spans [][2]int32
	for ii := range m.instrs {
		if willPack[ii] {
			continue
		}
		spans = readSpans(&m.instrs[ii], spans[:0])
		for _, s := range spans {
			for w := int32(0); w < s[1]; w++ {
				mark(s[0] + w)
			}
		}
	}
	return rowReq
}

// Maintainer classes for a packed slot's offset (how the slot's bits
// stay coherent with the value the offset's row would hold).
const (
	pmNone   = iota // no maintainer: the offset cannot be packed-read
	pmConst         // constant: prefilled, never written
	pmInstr         // instruction-produced inside the partitioned schedule
	pmInput         // design input: the poke path refreshes the bit
	pmRegOut        // non-elided register output: commit word-merge
)

// packMaint derives the maintainer-classification inputs from the
// machine and its partition ranges: the (unique) writer instruction per
// offset, input offsets, non-elided register outputs, and elided
// register storage. Shared by the pass and the SM-PACK verifier so both
// sides classify identically.
type packMaint struct {
	writerOf      []int32 // instruction index per offset, -1 none
	inputOff      []bool
	regOutOf      []int32 // non-elided register index per offset, -1 none
	elidedStorage []bool  // offset is an elided register's in-place storage
	constOffs     []bool
	// sa1 is the static-activity widening table (nil when ablated); the
	// verifier re-derives the identical table so both sides classify
	// register-merge sources the same way.
	sa1 []bool
}

func newPackMaint(m *machine, ranges [][2]int32) *packMaint {
	pm := &packMaint{
		writerOf:      make([]int32, len(m.t)),
		inputOff:      make([]bool, len(m.t)),
		regOutOf:      make([]int32, len(m.t)),
		elidedStorage: make([]bool, len(m.t)),
		constOffs:     make([]bool, len(m.t)),
	}
	for i := range pm.writerOf {
		pm.writerOf[i] = -1
		pm.regOutOf[i] = -1
	}
	inRanges := make([]bool, len(m.instrs))
	for _, r := range ranges {
		for p := r[0]; p < r[1] && int(p) < len(m.sched); p++ {
			e := &m.sched[p]
			switch e.kind {
			case seInstr, seSkipIfZeroF, seSkipIfNonzeroF:
				if e.idx >= 0 && int(e.idx) < len(m.instrs) {
					inRanges[e.idx] = true
				}
			}
		}
	}
	for ii := range m.instrs {
		if !inRanges[ii] {
			continue
		}
		off, words := writeSpan(&m.instrs[ii])
		for w := int32(0); w < words; w++ {
			if off+w >= 0 && int(off+w) < len(pm.writerOf) {
				pm.writerOf[off+w] = int32(ii)
			}
		}
	}
	for _, in := range m.d.Inputs {
		if off := m.off[in]; off >= 0 {
			pm.inputOff[off] = true
		}
	}
	for ri := range m.d.Regs {
		out := m.off[m.d.Regs[ri].Out]
		if out < 0 {
			continue
		}
		if m.elided != nil && m.elided[ri] {
			pm.elidedStorage[out] = true
			continue
		}
		pm.regOutOf[out] = int32(ri)
	}
	for i := range m.d.Consts {
		pm.constOffs[m.constOff[i]] = true
	}
	return pm
}

// classOf classifies one offset's maintainer. A register output is
// mergeable only when its next-value offset is itself 1-bit unsigned
// and maintainable (depth-limited: register chains terminate, cycles
// degrade to pmNone and the reader stays unpacked).
func (pm *packMaint) classOf(m *machine, offW []int32, offU []bool,
	off int32, depth int) int {
	switch {
	case off < 0 || int(off) >= len(pm.writerOf):
		return pmNone
	case pm.constOffs[off]:
		return pmConst
	case pm.writerOf[off] >= 0:
		return pmInstr
	case pm.inputOff[off]:
		return pmInput
	case pm.regOutOf[off] >= 0:
		ri := pm.regOutOf[off]
		next := m.off[m.d.Regs[ri].Next]
		nextOne := next >= 0 && (offW[next] == 1 && offU[next] ||
			pm.sa1 != nil && pm.sa1[next])
		if nextOne && depth < 4 &&
			pm.classOf(m, offW, offU, next, depth+1) != pmNone {
			return pmRegOut
		}
	}
	return pmNone
}

// packOperands appends the packed-operand offsets of a packable
// instruction for its pcode (the offsets that become slot reads).
func packOperands(in *instr, pc pcode, dst []int32) []int32 {
	dst = append(dst, in.a)
	switch pc {
	case pCopy, pNot:
	case pMux:
		dst = append(dst, in.b, in.c)
	case pCmpMux:
		dst = append(dst, in.b, in.c, in.mem)
	default:
		dst = append(dst, in.b)
	}
	return dst
}

// buildPackPlan runs the bit-packing pass over a compiled machine and
// its per-partition schedule ranges. sa1 is the static-activity widening
// table (saPackBits; nil disables widening). It returns nil when nothing
// is packable.
func buildPackPlan(m *machine, ranges [][2]int32,
	keepLive []netlist.SignalID, sa1 []bool) *packPlan {
	offW, offU := packOffsetClass(m)

	willPack := make([]bool, len(m.instrs))
	pcodeOf := make([]pcode, len(m.instrs))
	// Fused-skip entries execute their instruction and branch on its
	// destination row in one step; those instructions stay unpacked.
	fusedSkip := make([]bool, len(m.instrs))
	for _, e := range m.sched {
		if (e.kind == seSkipIfZeroF || e.kind == seSkipIfNonzeroF) &&
			e.idx >= 0 && int(e.idx) < len(m.instrs) {
			fusedSkip[e.idx] = true
		}
	}
	for ii := range m.instrs {
		if fusedSkip[ii] {
			continue
		}
		if pc, ok := packablePcode(&m.instrs[ii], offW, offU, sa1); ok {
			willPack[ii] = true
			pcodeOf[ii] = pc
		}
	}

	// Demote instructions whose operands have no maintainer (no
	// cascade: a demoted instruction's destination is still
	// instruction-produced, so its readers keep their pmInstr class).
	pm := newPackMaint(m, ranges)
	pm.sa1 = sa1
	any := false
	var ops []int32
	for ii := range m.instrs {
		if !willPack[ii] {
			continue
		}
		ops = packOperands(&m.instrs[ii], pcodeOf[ii], ops[:0])
		for _, off := range ops {
			if pm.classOf(m, offW, offU, off, 0) == pmNone {
				willPack[ii] = false
				break
			}
		}
		if willPack[ii] {
			any = true
		}
	}
	if !any {
		return nil
	}

	live := m.engineLiveOffsets(keepLive)
	rowReq := packRowRequired(m, live, willPack)

	pp := &packPlan{
		slotOf:      make([]int32, len(m.t)),
		packedInstr: willPack,
		partPacked:  make([]bool, len(ranges)),
		ranges:      make([][2]int32, len(ranges)),
		saWidened:   sa1 != nil,
	}
	for i := range pp.slotOf {
		pp.slotOf[i] = -1
	}
	slotFor := func(off int32) int32 {
		if s := pp.slotOf[off]; s >= 0 {
			return s
		}
		s := pp.nslots
		pp.nslots++
		pp.slotOf[off] = s
		pp.offOf = append(pp.offOf, off)
		pp.constSlot = append(pp.constSlot, false)
		pp.slotPackedDst = append(pp.slotPackedDst, false)
		return s
	}

	// Assign slots to every packed operand and schedule its maintenance:
	// producer-side gathers for unpacked writers, commit merges for
	// register outputs (forcing the next-value slot into the plan).
	needPackAfter := make([]int32, len(m.instrs))
	for i := range needPackAfter {
		needPackAfter[i] = -1
	}
	var merges []int32
	ensured := make([]bool, len(m.t))
	var ensure func(off int32)
	ensure = func(off int32) {
		if ensured[off] {
			return
		}
		ensured[off] = true
		s := slotFor(off)
		switch pm.classOf(m, offW, offU, off, 0) {
		case pmConst:
			pp.constSlot[s] = true
		case pmInstr:
			if w := pm.writerOf[off]; !willPack[w] {
				needPackAfter[w] = off
			}
		case pmRegOut:
			ri := pm.regOutOf[off]
			merges = append(merges, ri)
			ensure(m.off[m.d.Regs[ri].Next])
		}
	}
	for ii := range m.instrs {
		if !willPack[ii] {
			continue
		}
		ops = packOperands(&m.instrs[ii], pcodeOf[ii], ops[:0])
		for _, off := range ops {
			ensure(off)
		}
	}

	// Rewrite the schedule partition by partition. Skip spans are
	// re-emitted with their lengths patched at close (inserted gathers
	// stretch them); a fused skip whose instruction needs a
	// producer-side gather is de-fused into instr + gather + plain skip.
	type openSpan struct {
		ctl    int
		endOld int32
	}
	for pi, r := range ranges {
		pp.ranges[pi] = [2]int32{int32(len(pp.sched)), 0}
		var stack []openSpan
		closeTo := func(pos int32) {
			for len(stack) > 0 && stack[len(stack)-1].endOld <= pos {
				sp := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				pp.sched[sp.ctl].n = int32(len(pp.sched) - sp.ctl - 1)
			}
		}
		emitPackAfter := func(w int32) {
			off := needPackAfter[w]
			if off < 0 {
				return
			}
			pp.pins = append(pp.pins, pinstr{
				code: pPack, a: -1, b: -1, c: -1, m: -1,
				dst: pp.slotOf[off], rowOff: off,
			})
			pp.sched = append(pp.sched, schedEntry{kind: sePacked,
				idx: int32(len(pp.pins) - 1)})
			pp.packsInserted++
			pp.partPacked[pi] = true
		}
		for p := r[0]; p < r[1]; p++ {
			closeTo(p)
			e := m.sched[p]
			switch e.kind {
			case seInstr:
				if !willPack[e.idx] {
					pp.sched = append(pp.sched, e)
					emitPackAfter(e.idx)
					continue
				}
				in := &m.instrs[e.idx]
				pc := pcodeOf[e.idx]
				pin := pinstr{code: pc, a: -1, b: -1, c: -1, m: -1,
					out: in.out, weight: 1}
				if in.kind == kFused {
					pin.weight = 2
				}
				pin.a = pp.slotOf[in.a]
				switch pc {
				case pCopy, pNot:
				case pMux:
					pin.b = pp.slotOf[in.b]
					pin.c = pp.slotOf[in.c]
				case pCmpMux:
					pin.cmp = ICode(in.p0)
					pin.b = pp.slotOf[in.b]
					pin.c = pp.slotOf[in.c]
					pin.m = pp.slotOf[in.mem]
				default:
					pin.b = pp.slotOf[in.b]
				}
				pin.dst = slotFor(in.dst)
				pp.slotPackedDst[pin.dst] = true
				pin.maskedDst = pm.elidedStorage[in.dst]
				if rowReq[in.dst] {
					pin.rowOff = in.dst
				} else {
					pin.rowOff = -1
					pp.elidedRows++
				}
				pp.pins = append(pp.pins, pin)
				pp.sched = append(pp.sched, schedEntry{kind: sePacked,
					idx: int32(len(pp.pins) - 1)})
				pp.packedOps++
				pp.partPacked[pi] = true
			case seSkipIfZeroF, seSkipIfNonzeroF:
				if e.idx >= 0 && needPackAfter[e.idx] >= 0 {
					in := &m.instrs[e.idx]
					pp.sched = append(pp.sched, schedEntry{kind: seInstr,
						idx: e.idx})
					emitPackAfter(e.idx)
					k := seSkipIfZero
					if e.kind == seSkipIfNonzeroF {
						k = seSkipIfNonzero
					}
					pp.sched = append(pp.sched, schedEntry{kind: k, idx: in.dst})
					stack = append(stack, openSpan{ctl: len(pp.sched) - 1,
						endOld: p + 1 + e.n})
					continue
				}
				pp.sched = append(pp.sched, e)
				stack = append(stack, openSpan{ctl: len(pp.sched) - 1,
					endOld: p + 1 + e.n})
			case seSkipIfZero, seSkipIfNonzero:
				pp.sched = append(pp.sched, e)
				stack = append(stack, openSpan{ctl: len(pp.sched) - 1,
					endOld: p + 1 + e.n})
			default:
				pp.sched = append(pp.sched, e)
			}
		}
		closeTo(r[1])
		pp.ranges[pi][1] = int32(len(pp.sched))
	}
	if pp.packedOps == 0 {
		return nil
	}

	pp.regSlot = make([]packRegMerge, len(m.d.Regs))
	for i := range pp.regSlot {
		pp.regSlot[i] = packRegMerge{out: -1, next: -1}
	}
	for _, ri := range merges {
		out := m.off[m.d.Regs[ri].Out]
		next := m.off[m.d.Regs[ri].Next]
		pp.regSlot[ri] = packRegMerge{out: pp.slotOf[out], next: pp.slotOf[next]}
	}

	// Materialize the packed table's initial image: each const slot is
	// the constant's low bit broadcast to all lane bits.
	pp.constInit = make([]uint64, pp.nslots)
	for s := int32(0); s < pp.nslots; s++ {
		if pp.constSlot[s] && m.t[pp.offOf[s]]&1 == 1 {
			pp.constInit[s] = ^uint64(0)
		}
	}
	return pp
}

// --- SM-PACK verification ---

// verifyPackPlan statically checks a pack plan against the machine it
// overlays (the SM-PACK rules):
//
//	SM-PACK-SLOT   slot assignment is a bijection between packed slots
//	               and table word offsets, all indices and auxiliary
//	               arrays in bounds
//	SM-PACK-WIDTH  every packed offset holds a 1-bit unsigned value
//	SM-PACK-ROW    row-required destinations keep their unpacked row
//	               coherent; a scatter is elided only for slots no
//	               unpacked reader and no live set member observes;
//	               gathers read the row their slot mirrors; elided-
//	               register storage is written masked
//	SM-PACK-DEFUSE every packed operand has a maintainer (const slot,
//	               packed or gathered instruction write ordered before
//	               the read, poke-refreshed input, or commit-merged
//	               register output with a coherent next slot), and
//	               producer-side gathers sit immediately after their
//	               producers
//	SM-PACK-SKIP   rewritten skip spans are in-bounds, forward, and
//	               well-nested within their partition
//
// Like verifyMachine it is pure analysis, independent of the pass: it
// re-derives width classes, the row-required set, and the maintainer
// classification from the machine.
func verifyPackPlan(m *machine, pp *packPlan, ranges [][2]int32,
	keepLive []netlist.SignalID) []verify.Diagnostic {
	var diags []verify.Diagnostic
	errf := func(rule, loc, hint, format string, args ...any) {
		diags = append(diags, verify.Diagnostic{
			Rule: rule, Sev: verify.SevError, Loc: loc,
			Msg: fmt.Sprintf(format, args...), Hint: hint,
		})
	}

	// SM-PACK-SLOT: bijection, bounds, auxiliary array shapes.
	if int(pp.nslots) != len(pp.offOf) {
		errf("SM-PACK-SLOT", "pack plan", "",
			"nslots %d does not match offOf length %d", pp.nslots, len(pp.offOf))
		return diags
	}
	if len(pp.slotOf) != len(m.t) {
		errf("SM-PACK-SLOT", "pack plan", "",
			"slotOf length %d does not match value table length %d",
			len(pp.slotOf), len(m.t))
		return diags
	}
	if len(pp.constSlot) != int(pp.nslots) ||
		len(pp.slotPackedDst) != int(pp.nslots) {
		errf("SM-PACK-SLOT", "pack plan", "",
			"per-slot arrays (const %d, packedDst %d) do not match nslots %d",
			len(pp.constSlot), len(pp.slotPackedDst), pp.nslots)
		return diags
	}
	if len(pp.partPacked) != len(ranges) {
		errf("SM-PACK-SLOT", "pack plan",
			"the pooled engine needs single-owner marks for every partition",
			"partPacked length %d does not match %d partitions",
			len(pp.partPacked), len(ranges))
		return diags
	}
	if len(pp.regSlot) != len(m.d.Regs) {
		errf("SM-PACK-SLOT", "pack plan", "",
			"regSlot length %d does not match %d registers",
			len(pp.regSlot), len(m.d.Regs))
		return diags
	}
	for off, s := range pp.slotOf {
		if s < 0 {
			continue
		}
		if s >= pp.nslots {
			errf("SM-PACK-SLOT", fmt.Sprintf("offset %d", off), "",
				"slot %d out of range (nslots %d)", s, pp.nslots)
			continue
		}
		if pp.offOf[s] != int32(off) {
			errf("SM-PACK-SLOT", fmt.Sprintf("offset %d", off),
				"slotOf and offOf must be inverse maps",
				"slot %d maps back to offset %d", s, pp.offOf[s])
		}
	}
	seen := make(map[int32]int32)
	for s, off := range pp.offOf {
		if off < 0 || int(off) >= len(m.t) {
			errf("SM-PACK-SLOT", fmt.Sprintf("slot %d", s), "",
				"offset %d outside the value table", off)
			continue
		}
		if prev, ok := seen[off]; ok {
			errf("SM-PACK-SLOT", fmt.Sprintf("slot %d", s),
				"two packed slots aliasing one table word diverge on write",
				"offset %d already packed as slot %d", off, prev)
		}
		seen[off] = int32(s)
		if pp.slotOf[off] != int32(s) {
			errf("SM-PACK-SLOT", fmt.Sprintf("slot %d", s), "",
				"offset %d maps back to slot %d", off, pp.slotOf[off])
		}
	}
	if len(diags) > 0 {
		return diags
	}

	// SM-PACK-WIDTH: packed offsets are 1-bit unsigned — declared so, or
	// (for an SA-widened plan) proven so by re-running the analysis.
	offW, offU := packOffsetClass(m)
	var sa1 []bool
	if pp.saWidened {
		sa1 = saPackBits(m)
	}
	for s, off := range pp.offOf {
		if offW[off] == 1 && offU[off] {
			continue
		}
		if sa1 != nil && sa1[off] {
			continue
		}
		errf("SM-PACK-WIDTH", fmt.Sprintf("slot %d (offset %d)", s, off),
			"packing a multi-bit or signed value truncates lanes to bit 0",
			"packed offset is %d bits wide (unsigned=%v) and not proven 1-bit",
			offW[off], offU[off])
	}

	// Row-required set and maintainer classification, re-derived from
	// the machine and the plan's own packedInstr marking.
	live := m.engineLiveOffsets(keepLive)
	rowReq := packRowRequired(m, live, pp.packedInstr)
	pm := newPackMaint(m, ranges)
	pm.sa1 = sa1

	// Readers of each offset in the base instruction stream (for the
	// elided-scatter rule).
	readersOf := make(map[int32][]int32)
	var spans [][2]int32
	for ii := range m.instrs {
		spans = readSpans(&m.instrs[ii], spans[:0])
		for _, sp := range spans {
			for w := int32(0); w < sp[1]; w++ {
				readersOf[sp[0]+w] = append(readersOf[sp[0]+w], int32(ii))
			}
		}
	}

	// SM-PACK-ROW: per-pinstr row and state coherence.
	arity := func(pc pcode) int {
		switch pc {
		case pPack:
			return 0
		case pCopy, pNot:
			return 1
		case pMux:
			return 3
		case pCmpMux:
			return 4
		default:
			return 2
		}
	}
	loc := func(i int) string { return fmt.Sprintf("pinstr[%d]", i) }
	for i := range pp.pins {
		p := &pp.pins[i]
		if p.dst < 0 || p.dst >= pp.nslots {
			errf("SM-PACK-ROW", loc(i), "", "destination slot %d out of range", p.dst)
			continue
		}
		if p.code == pPack {
			if p.rowOff < 0 || int(p.rowOff) >= len(m.t) {
				errf("SM-PACK-ROW", loc(i), "",
					"gather row offset %d outside the value table", p.rowOff)
				continue
			}
			if pp.slotOf[p.rowOff] != p.dst {
				errf("SM-PACK-ROW", loc(i),
					"a gather must fill the slot assigned to its source row",
					"gathers row %d into slot %d (assigned slot %d)",
					p.rowOff, p.dst, pp.slotOf[p.rowOff])
			}
			continue
		}
		ops := [4]int32{p.a, p.b, p.c, p.m}
		for k := 0; k < arity(p.code); k++ {
			if ops[k] < 0 || ops[k] >= pp.nslots {
				errf("SM-PACK-ROW", loc(i), "", "operand slot %d out of range", ops[k])
			}
		}
		dstOff := pp.offOf[p.dst]
		if pm.elidedStorage[dstOff] && !p.maskedDst {
			errf("SM-PACK-ROW", loc(i),
				"an elided register's in-place update is self-referential state: a whole-word write advances idle lanes",
				"writes elided register storage (offset %d) without masking", dstOff)
		}
		switch {
		case p.rowOff == dstOff:
			// Coherent scatter.
		case p.rowOff == -1:
			if rowReq[dstOff] {
				errf("SM-PACK-ROW", loc(i),
					"row-required destinations (outputs, registers, unpacked readers) must scatter",
					"elides the scatter for row-required offset %d", dstOff)
			}
			for _, r := range readersOf[dstOff] {
				if !pp.packedInstr[r] {
					errf("SM-PACK-ROW", loc(i),
						"an unpacked instruction would read the stale row",
						"elides the scatter for offset %d read by unpacked instr for %q",
						dstOff, m.d.Signals[m.instrs[r].out].Name)
				}
			}
		default:
			errf("SM-PACK-ROW", loc(i),
				"a packed op may only scatter to its own destination's row",
				"scatters to row %d but destination slot mirrors offset %d",
				p.rowOff, dstOff)
		}
	}

	// writtenAnywhere: slots some packed entry in the rewritten schedule
	// writes (for commit-merge source checks, where the producing
	// partition's position relative to the reader is irrelevant — the
	// merge reads at the cycle boundary).
	writtenAnywhere := make([]bool, pp.nslots)
	for _, r := range pp.ranges {
		for p := r[0]; p < r[1] && int(p) < len(pp.sched); p++ {
			e := &pp.sched[p]
			if e.kind == sePacked && e.idx >= 0 && int(e.idx) < len(pp.pins) {
				if d := pp.pins[e.idx].dst; d >= 0 && d < pp.nslots {
					writtenAnywhere[d] = true
				}
			}
		}
	}
	// maintained reports whether slot s has a cycle-boundary maintainer
	// (valid before any partition runs); instruction-produced slots are
	// checked by the replay's written-before-read order instead.
	regMergeOK := func(ri int32) bool {
		if ri < 0 || int(ri) >= len(pp.regSlot) {
			return false
		}
		mr := pp.regSlot[ri]
		if mr.out < 0 || mr.out >= pp.nslots || mr.next < 0 || mr.next >= pp.nslots {
			return false
		}
		if pp.offOf[mr.out] != m.off[m.d.Regs[ri].Out] ||
			pp.offOf[mr.next] != m.off[m.d.Regs[ri].Next] {
			return false
		}
		// The merge's source must itself be coherent at commit.
		ns := mr.next
		nOff := pp.offOf[ns]
		return pp.constSlot[ns] || pm.inputOff[nOff] || writtenAnywhere[ns] ||
			pm.regOutOf[nOff] >= 0
	}

	// SM-PACK-DEFUSE + SM-PACK-SKIP: replay the rewritten schedule in
	// global order, tracking which slots have been written.
	if len(pp.ranges) != len(ranges) {
		errf("SM-PACK-SKIP", "pack plan", "",
			"plan has %d partition ranges, machine has %d",
			len(pp.ranges), len(ranges))
		return diags
	}
	written := make([]bool, pp.nslots)
	checkOperand := func(ploc string, s int32) {
		if s < 0 || s >= pp.nslots {
			return // reported by SM-PACK-ROW
		}
		if pp.constSlot[s] || written[s] {
			return
		}
		off := pp.offOf[s]
		switch {
		case pm.inputOff[off]:
			return // poke-refreshed
		case pm.elidedStorage[off]:
			return // self-referential state read (previous value)
		case pm.regOutOf[off] >= 0:
			if regMergeOK(pm.regOutOf[off]) {
				return
			}
			errf("SM-PACK-DEFUSE", ploc,
				"a packed register output needs a commit merge with a coherent next slot",
				"reads register-output slot %d (offset %d) with no valid commit merge",
				s, off)
			return
		}
		errf("SM-PACK-DEFUSE", ploc,
			"every packed operand needs a maintainer ordered before the read",
			"reads slot %d (offset %d) with no maintainer: not const, not yet written, not an input or merged register output",
			s, off)
	}
	for pi, r := range pp.ranges {
		ploc := func(p int32) string { return fmt.Sprintf("packed sched[%d]", p) }
		if r[0] < 0 || r[1] < r[0] || int(r[1]) > len(pp.sched) {
			errf("SM-PACK-SKIP", fmt.Sprintf("partition %d", pi), "",
				"packed schedule range [%d,%d) out of bounds", r[0], r[1])
			continue
		}
		var ends []int32
		for p := r[0]; p < r[1]; p++ {
			for len(ends) > 0 && ends[len(ends)-1] <= p {
				ends = ends[:len(ends)-1]
			}
			e := &pp.sched[p]
			switch e.kind {
			case sePacked:
				if e.idx < 0 || int(e.idx) >= len(pp.pins) {
					errf("SM-PACK-SKIP", ploc(p), "",
						"packed instruction index %d out of range", e.idx)
					continue
				}
				pin := &pp.pins[e.idx]
				if pin.dst < 0 || pin.dst >= pp.nslots {
					continue // reported by SM-PACK-ROW
				}
				if pin.code == pPack {
					// A producer-side gather must directly follow its
					// producer so the row it reads is freshly written
					// (gathers of writer-less rows — inputs, register
					// outputs — are coherent anywhere).
					if wi := writerAt(pm, pin.rowOff); wi >= 0 {
						prev := int32(-1)
						if p > r[0] {
							pe := &pp.sched[p-1]
							if pe.kind == seInstr {
								prev = pe.idx
							}
						}
						if prev != wi {
							errf("SM-PACK-DEFUSE", ploc(p),
								"a producer-side gather must sit immediately after the instruction writing its row",
								"gather for offset %d is not adjacent to its producer (instr %d)",
								pin.rowOff, wi)
						}
					}
					written[pin.dst] = true
					continue
				}
				ops := [4]int32{pin.a, pin.b, pin.c, pin.m}
				for k := 0; k < arity(pin.code); k++ {
					checkOperand(ploc(p), ops[k])
				}
				written[pin.dst] = true
			case seSkipIfZero, seSkipIfNonzero, seSkipIfZeroF, seSkipIfNonzeroF:
				if e.n < 0 {
					errf("SM-PACK-SKIP", ploc(p), "skips must be forward",
						"negative skip count %d", e.n)
					continue
				}
				tgt := p + 1 + e.n
				if tgt > r[1] {
					errf("SM-PACK-SKIP", ploc(p),
						"a rewritten skip crossing the partition boundary drops other partitions' work",
						"skip target %d beyond partition end %d", tgt, r[1])
					continue
				}
				if len(ends) > 0 && tgt > ends[len(ends)-1] {
					errf("SM-PACK-SKIP", ploc(p),
						"rewritten spans must stay nested",
						"skip target %d beyond enclosing span end %d",
						tgt, ends[len(ends)-1])
					continue
				}
				ends = append(ends, tgt)
			}
		}
	}
	return diags
}

// writerAt returns the writer instruction of an offset, -1 when the
// offset is out of range or has no writer in the partitioned schedule.
func writerAt(pm *packMaint, off int32) int32 {
	if off < 0 || int(off) >= len(pm.writerOf) {
		return -1
	}
	return pm.writerOf[off]
}
