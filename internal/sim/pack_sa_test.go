package sim

import (
	"math/rand"
	"testing"

	"essent/internal/netlist"
	"essent/internal/randckt"
)

// saPackSrc declares its flag network at 8 bits, but every flag's value
// set is provably {0, 1}: the analysis must widen pack eligibility to
// cover it, while the NoSA ablation packs only the declared-1-bit tail.
const saPackSrc = `
circuit W :
  module W :
    input clock : Clock
    input a : UInt<1>
    input b : UInt<1>
    input w : UInt<8>
    output o : UInt<8>
    output p : UInt<1>
    reg f : UInt<8>, clock
    reg s : UInt<8>, clock
    node g = mux(a, UInt<8>(1), UInt<8>(0))
    node h = and(g, mux(b, UInt<8>(1), UInt<8>(0)))
    node k = xor(h, f)
    f <= k
    s <= tail(add(s, w), 1)
    node t = bits(w, 2, 2)
    node u = and(t, b)
    o <= or(f, s)
    p <= xor(u, bits(k, 0, 0))
`

// TestPackSAWidensEligibility: the analysis must admit the 8-bit flag
// network into the packed table; the ablation must not, and the two
// engines must stay bit-exact (state and Stats) per lane under
// divergent stimulus.
func TestPackSAWidensEligibility(t *testing.T) {
	d := compileSrc(t, saPackSrc)
	wide, err := NewBatchCCSS(d, BatchOptions{Lanes: 8, Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := NewBatchCCSS(d, BatchOptions{Lanes: 8, Cp: 8, NoSA: true})
	if err != nil {
		t.Fatal(err)
	}
	ws, ns := wide.PackStats(), narrow.PackStats()
	t.Logf("sa %+v, nosa %+v", ws, ns)
	if ws.PackedOps <= ns.PackedOps {
		t.Fatalf("SA did not widen pack eligibility: sa %+v, nosa %+v", ws, ns)
	}

	ins := []string{"a", "b", "w"}
	rng := rand.New(rand.NewSource(7))
	for cyc := 0; cyc < 120; cyc++ {
		name := ins[rng.Intn(len(ins))]
		id, _ := d.SignalByName(name)
		for l := 0; l < 8; l++ {
			if rng.Intn(3) == 0 {
				continue
			}
			v := rng.Uint64()
			wide.PokeLane(l, id, v)
			narrow.PokeLane(l, id, v)
		}
		wide.Step(1)
		narrow.Step(1)
		for l := 0; l < 8; l++ {
			if got, want := batchLaneState(wide, l), batchLaneState(narrow, l); got != want {
				t.Fatalf("cyc %d lane %d SA diverged from ablation:\nsa:   %s\nnosa: %s",
					cyc, l, got, want)
			}
			if got, want := wide.LaneStats(l), narrow.LaneStats(l); got != want {
				t.Fatalf("cyc %d lane %d SA stats diverged:\nsa:   %+v\nnosa: %+v",
					cyc, l, got, want)
			}
		}
	}
}

// TestPackSAFuzzEquivalence runs random circuits on SA-widened and
// ablated batch engines in lockstep — the widened rewrite must never
// change a lane's architectural state or work Stats.
func TestPackSAFuzzEquivalence(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		d, err := netlist.Compile(randckt.Generate(seed+5200, randckt.DefaultConfig()))
		if err != nil {
			t.Fatal(err)
		}
		wide, err := NewBatchCCSS(d, BatchOptions{Lanes: 4, Cp: 8})
		if err != nil {
			t.Fatal(err)
		}
		narrow, err := NewBatchCCSS(d, BatchOptions{Lanes: 4, Cp: 8, NoSA: true})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		for cyc := 0; cyc < 50; cyc++ {
			if len(d.Inputs) > 0 {
				in := d.Inputs[rng.Intn(len(d.Inputs))]
				for l := 0; l < 4; l++ {
					if rng.Intn(2) == 0 {
						continue
					}
					v := rng.Uint64()
					wide.PokeLane(l, in, v)
					narrow.PokeLane(l, in, v)
				}
			}
			wide.Step(1)
			narrow.Step(1)
			for l := 0; l < 4; l++ {
				if got, want := batchLaneState(wide, l), batchLaneState(narrow, l); got != want {
					t.Fatalf("seed %d cyc %d lane %d SA diverged:\nsa:   %s\nnosa: %s",
						seed, cyc, l, got, want)
				}
				if got, want := wide.LaneStats(l), narrow.LaneStats(l); got != want {
					t.Fatalf("seed %d cyc %d lane %d SA stats diverged:\nsa:   %+v\nnosa: %+v",
						seed, cyc, l, got, want)
				}
			}
		}
	}
}
