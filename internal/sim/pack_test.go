package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"essent/internal/bits"
	"essent/internal/netlist"
	"essent/internal/randckt"
	"essent/pkg/simrt"
)

// packTestSrc is a 1-bit-heavy control circuit: AND/OR/XOR/NOT chains,
// comparisons, a 1-bit mux, and a wide datapath signal mixed in so the
// pack plan has packed ops, unpacked neighbors, gathers, and both
// scattered and elided destinations.
const packTestSrc = `
circuit K :
  module K :
    input clock : Clock
    input a : UInt<1>
    input b : UInt<1>
    input c : UInt<1>
    input w : UInt<8>
    output o : UInt<1>
    output p : UInt<1>
    output q : UInt<8>
    reg r : UInt<1>, clock
    reg s : UInt<8>, clock
    reg e2 : UInt<1>, clock
    reg m1 : UInt<1>, clock
    reg m2 : UInt<1>, clock
    node x = and(a, b)
    node y = or(x, c)
    node z = xor(y, r)
    node g = eq(a, c)
    node h = and(not(g), b)
    node sel = mux(x, z, h)
    node t = bits(w, 3, 3)
    node u = and(t, b)
    node n0 = xor(e2, a)
    node h2 = and(e2, n0)
    r <= xor(sel, g)
    s <= tail(add(s, w), 1)
    e2 <= n0
    m1 <= xor(m2, a)
    m2 <= and(m1, b)
    o <= sel
    p <= or(or(h, u), or(h2, xor(m1, m2)))
    q <= s
`

func packTestPlan(t *testing.T, d *netlist.Design,
	opts BatchOptions) (*BatchCCSS, *packPlan, [][2]int32, []netlist.SignalID) {
	t.Helper()
	b, err := NewBatchCCSS(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if b.pp == nil {
		t.Fatal("pack plan not built")
	}
	base := b.base
	ranges := make([][2]int32, len(base.parts))
	for pi := range base.parts {
		ranges[pi] = [2]int32{base.parts[pi].schedStart, base.parts[pi].schedEnd}
	}
	// keepLive is nil, matching the engine: partition outputs are not
	// row-kept — packed destinations compare on slot words instead.
	return b, b.pp, ranges, nil
}

// TestPackEngages: the 1-bit-heavy circuit must actually produce packed
// ops, gathers, and at least one elided scatter; NoPack must report the
// zero value.
func TestPackEngages(t *testing.T) {
	d := compileSrc(t, packTestSrc)
	b, pp, _, _ := packTestPlan(t, d, BatchOptions{Lanes: 8, Cp: 8})
	ps := b.PackStats()
	if ps.PackedOps == 0 || ps.Slots == 0 || ps.PacksInserted == 0 {
		t.Fatalf("pack did not engage: %+v", ps)
	}
	if ps.PackedOps != pp.packedOps {
		t.Fatalf("PackStats.PackedOps = %d, plan says %d", ps.PackedOps, pp.packedOps)
	}
	np, err := NewBatchCCSS(d, BatchOptions{Lanes: 8, Cp: 8, NoPack: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := np.PackStats(); got != (PackStats{}) {
		t.Fatalf("NoPack engine reports pack stats %+v", got)
	}
}

// TestPackedLaneEquivalenceFuzz drives full-width (64-lane) packed
// batches with divergent per-lane stimulus — including mid-run pokes of
// 1-bit (packed) inputs — and checks every lane bit-exact, state and
// Stats, against a sequential CCSS and against a NoPack batch engine.
func TestPackedLaneEquivalenceFuzz(t *testing.T) {
	seeds := 5
	if testing.Short() {
		seeds = 2
	}
	lanes := simrt.MaxLanes
	for seed := int64(0); seed < int64(seeds); seed++ {
		cfg := randckt.DefaultConfig()
		c := randckt.Generate(seed+8100, cfg)
		d, err := netlist.Compile(c)
		if err != nil {
			t.Fatal(err)
		}
		packed, err := NewBatchCCSS(d, BatchOptions{Lanes: lanes, Cp: 8})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := NewBatchCCSS(d, BatchOptions{Lanes: lanes, Cp: 8, NoPack: true})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewCCSS(d, CCSSOptions{Cp: 8})
		if err != nil {
			t.Fatal(err)
		}
		// The reference lane: lane 17 of the batch replays on the scalar
		// engine (checking all 64 scalar lanes is quadratic; the
		// plain-batch comparison already covers every lane).
		const refLane = 17
		// Prefer a 1-bit input for divergent pokes so a packed signal is
		// poked mid-run on some lanes only.
		var oneBitIns []netlist.SignalID
		for _, in := range d.Inputs {
			if d.Signals[in].Width == 1 {
				oneBitIns = append(oneBitIns, in)
			}
		}
		rng := rand.New(rand.NewSource(seed))
		for cyc := 0; cyc < 60; cyc++ {
			if len(d.Inputs) > 0 && (cyc == 0 || rng.Intn(2) == 0) {
				in := d.Inputs[rng.Intn(len(d.Inputs))]
				if len(oneBitIns) > 0 && rng.Intn(2) == 0 {
					in = oneBitIns[rng.Intn(len(oneBitIns))]
				}
				w := d.Signals[in].Width
				for l := 0; l < lanes; l++ {
					if cyc > 0 && rng.Intn(3) == 0 {
						continue
					}
					words := make([]uint64, bits.Words(w))
					for i := range words {
						words[i] = rng.Uint64()
					}
					bits.MaskInto(words, w)
					packed.PokeWideLane(l, in, words)
					plain.PokeWideLane(l, in, words)
					if l == refLane {
						ref.PokeWide(in, words)
					}
				}
			}
			packed.Step(1)
			plain.Step(1)
			ref.Step(1)
			for l := 0; l < lanes; l++ {
				if got, want := batchLaneState(packed, l), batchLaneState(plain, l); got != want {
					t.Fatalf("seed %d cyc %d lane %d packed diverged from NoPack:\npacked: %s\nplain:  %s",
						seed, cyc, l, got, want)
				}
				if got, want := packed.LaneStats(l), plain.LaneStats(l); got != want {
					t.Fatalf("seed %d cyc %d lane %d packed stats diverged from NoPack:\npacked: %+v\nplain:  %+v",
						seed, cyc, l, got, want)
				}
			}
			if got, want := batchLaneState(packed, refLane), archState(ref); got != want {
				t.Fatalf("seed %d cyc %d packed lane %d diverged from sequential:\npacked: %s\nseq:    %s",
					seed, cyc, refLane, got, want)
			}
			if got, want := packed.LaneStats(refLane), *ref.Stats(); got != want {
				t.Fatalf("seed %d cyc %d packed lane %d stats diverged from sequential:\npacked: %+v\nseq:    %+v",
					seed, cyc, refLane, got, want)
			}
		}
	}
}

// TestPackedPooledEquivalence exercises the packed kernels under the
// worker pool (partial lane groups take the masked gather/scatter path;
// with -race this is the packed table's data-race test).
func TestPackedPooledEquivalence(t *testing.T) {
	d := compileSrc(t, packTestSrc)
	serial, _, _, _ := packTestPlan(t, d, BatchOptions{Lanes: 33, Cp: 8})
	pooled, pp, _, _ := packTestPlan(t, d,
		BatchOptions{Lanes: 33, Cp: 8, Workers: 4, ParCutoff: 1})
	defer pooled.Close()
	if pp.packedOps == 0 {
		t.Fatal("pooled engine did not pack")
	}
	ins := []string{"a", "b", "c", "w"}
	rng := rand.New(rand.NewSource(3))
	for cyc := 0; cyc < 120; cyc++ {
		name := ins[rng.Intn(len(ins))]
		id, _ := d.SignalByName(name)
		for l := 0; l < 33; l++ {
			if rng.Intn(3) == 0 {
				continue
			}
			v := rng.Uint64()
			serial.PokeLane(l, id, v)
			pooled.PokeLane(l, id, v)
		}
		serial.Step(1)
		pooled.Step(1)
		for l := 0; l < 33; l++ {
			if got, want := batchLaneState(pooled, l), batchLaneState(serial, l); got != want {
				t.Fatalf("cyc %d lane %d pooled diverged:\npool: %s\nser:  %s", cyc, l, got, want)
			}
		}
	}
}

// TestPackedCheckpointRoundTrip: capture a lane mid-run on a packed
// engine, restore it into a fresh packed engine, and verify the
// continuation is bit-exact — the capture reads unpacked rows (which
// row-required scatters keep coherent), and the restore must refresh
// the lane's bits in the persistent input and register-output slots.
func TestPackedCheckpointRoundTrip(t *testing.T) {
	d := compileSrc(t, packTestSrc)
	run, _, _, _ := packTestPlan(t, d, BatchOptions{Lanes: 4, Cp: 8})
	poke := func(b *BatchCCSS, rng *rand.Rand) *rand.Rand {
		for _, name := range []string{"a", "b", "c", "w"} {
			id, _ := d.SignalByName(name)
			for l := 0; l < 4; l++ {
				b.PokeLane(l, id, rng.Uint64())
			}
		}
		return rng
	}
	rng := rand.New(rand.NewSource(9))
	for cyc := 0; cyc < 20; cyc++ {
		poke(run, rng)
		run.Step(1)
	}
	snaps := make([]*State, 4)
	for l := range snaps {
		snaps[l] = run.CaptureLaneState(l)
	}
	resumed, err := NewBatchCCSS(d, BatchOptions{Lanes: 4, Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	for l := range snaps {
		if err := resumed.RestoreLaneState(l, snaps[l]); err != nil {
			t.Fatal(err)
		}
	}
	rng2 := rand.New(rand.NewSource(77))
	rng3 := rand.New(rand.NewSource(77))
	for cyc := 0; cyc < 20; cyc++ {
		poke(run, rng2)
		poke(resumed, rng3)
		run.Step(1)
		resumed.Step(1)
		for l := 0; l < 4; l++ {
			if got, want := batchLaneState(resumed, l), batchLaneState(run, l); got != want {
				t.Fatalf("cyc %d lane %d resumed diverged:\nresumed: %s\norig:    %s",
					cyc, l, got, want)
			}
		}
	}
}

// clonePackPlan deep-copies a plan so mutation tests can corrupt one
// field without poisoning the engine that built it.
func clonePackPlan(pp *packPlan) *packPlan {
	cp := *pp
	cp.slotOf = append([]int32(nil), pp.slotOf...)
	cp.offOf = append([]int32(nil), pp.offOf...)
	cp.constInit = append([]uint64(nil), pp.constInit...)
	cp.constSlot = append([]bool(nil), pp.constSlot...)
	cp.pins = append([]pinstr(nil), pp.pins...)
	cp.sched = append([]schedEntry(nil), pp.sched...)
	cp.ranges = append([][2]int32(nil), pp.ranges...)
	cp.packedInstr = append([]bool(nil), pp.packedInstr...)
	cp.slotPackedDst = append([]bool(nil), pp.slotPackedDst...)
	cp.partPacked = append([]bool(nil), pp.partPacked...)
	cp.regSlot = append([]packRegMerge(nil), pp.regSlot...)
	return &cp
}

// TestSMPackMutations corrupts a valid pack plan one field at a time and
// checks the SM-PACK verifier catches each corruption under the right
// rule — the verifier must remain an independent re-derivation, not a
// replay of the pass's own bookkeeping.
func TestSMPackMutations(t *testing.T) {
	d := compileSrc(t, packTestSrc)
	b, pp, ranges, keepLive := packTestPlan(t, d, BatchOptions{Lanes: 8, Cp: 8})
	m := b.base.machine
	if diags := verifyPackPlan(m, pp, ranges, keepLive); len(diags) != 0 {
		t.Fatalf("clean plan has diagnostics: %v", diags)
	}

	firstPin := func(p *packPlan, pred func(*pinstr) bool) int {
		for i := range p.pins {
			if pred(&p.pins[i]) {
				return i
			}
		}
		return -1
	}

	cases := []struct {
		name   string
		rule   string
		mutate func(p *packPlan) bool
	}{
		{"slot-bijection-broken", "SM-PACK-SLOT", func(p *packPlan) bool {
			if p.nslots < 2 {
				return false
			}
			p.offOf[0], p.offOf[1] = p.offOf[1], p.offOf[0]
			return true
		}},
		{"slot-out-of-bounds", "SM-PACK-SLOT", func(p *packPlan) bool {
			p.offOf[0] = int32(len(m.t)) + 7
			return true
		}},
		{"wide-offset-packed", "SM-PACK-WIDTH", func(p *packPlan) bool {
			// Repoint a slot at a multi-bit signal's offset.
			for i := range d.Signals {
				off := m.off[i]
				if off >= 0 && d.Signals[i].Width > 1 && m.nw[i] == 1 &&
					p.slotOf[off] < 0 {
					old := p.offOf[0]
					p.slotOf[old] = -1
					p.offOf[0] = off
					p.slotOf[off] = 0
					return true
				}
			}
			return false
		}},
		{"row-required-scatter-elided", "SM-PACK-ROW", func(p *packPlan) bool {
			i := firstPin(p, func(pin *pinstr) bool {
				return pin.code != pPack && pin.rowOff >= 0
			})
			if i < 0 {
				return false
			}
			p.pins[i].rowOff = -1
			return true
		}},
		{"gather-wrong-slot", "SM-PACK-ROW", func(p *packPlan) bool {
			if p.nslots < 2 {
				return false
			}
			i := firstPin(p, func(pin *pinstr) bool { return pin.code == pPack })
			if i < 0 {
				return false
			}
			p.pins[i].dst = (p.pins[i].dst + 1) % p.nslots
			return true
		}},
		{"gather-removed", "SM-PACK-DEFUSE", func(p *packPlan) bool {
			// Neutralize the first gather: its consumer now reads a slot no
			// entry in the partition validates. (Rewriting the entry to a
			// plain seInstr is invisible to the packed replay.)
			i := firstPin(p, func(pin *pinstr) bool { return pin.code == pPack })
			if i < 0 {
				return false
			}
			for si := range p.sched {
				e := &p.sched[si]
				if e.kind == sePacked && int(e.idx) == i {
					*e = schedEntry{kind: seInstr, idx: 0}
					return true
				}
			}
			return false
		}},
		{"masked-dst-cleared", "SM-PACK-ROW", func(p *packPlan) bool {
			// An elided register's packed update must merge under the
			// active-lane mask; clearing the flag advances idle lanes.
			i := firstPin(p, func(pin *pinstr) bool { return pin.maskedDst })
			if i < 0 {
				return false
			}
			p.pins[i].maskedDst = false
			return true
		}},
		{"reg-merge-dropped", "SM-PACK-DEFUSE", func(p *packPlan) bool {
			// A packed register-output read depends on the commit merge;
			// dropping the merge leaves the slot permanently stale.
			for ri := range p.regSlot {
				if p.regSlot[ri].out >= 0 {
					p.regSlot[ri] = packRegMerge{out: -1, next: -1}
					return true
				}
			}
			return false
		}},
		{"producer-pack-misplaced", "SM-PACK-DEFUSE", func(p *packPlan) bool {
			// A producer-side gather must sit immediately after the
			// instruction writing its row; swapping it with the producer
			// makes it read the stale pre-evaluation row.
			for si := 1; si < len(p.sched); si++ {
				e := &p.sched[si]
				if e.kind != sePacked {
					continue
				}
				if p.pins[e.idx].code == pPack && p.sched[si-1].kind == seInstr {
					p.sched[si-1], p.sched[si] = p.sched[si], p.sched[si-1]
					return true
				}
			}
			return false
		}},
		{"skip-escapes-partition", "SM-PACK-SKIP", func(p *packPlan) bool {
			for si := range p.sched {
				e := &p.sched[si]
				switch e.kind {
				case seSkipIfZero, seSkipIfNonzero, seSkipIfZeroF, seSkipIfNonzeroF:
					e.n = int32(len(p.sched)) + 50
					return true
				}
			}
			return false
		}},
		{"range-out-of-bounds", "SM-PACK-SKIP", func(p *packPlan) bool {
			p.ranges[len(p.ranges)-1][1] = int32(len(p.sched)) + 3
			return true
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mp := clonePackPlan(pp)
			if !tc.mutate(mp) {
				t.Skipf("mutation %s not applicable to this plan", tc.name)
			}
			diags := verifyPackPlan(m, mp, ranges, keepLive)
			if len(diags) == 0 {
				t.Fatalf("mutation %s not detected", tc.name)
			}
			found := false
			for _, dg := range diags {
				if strings.HasPrefix(dg.Rule, tc.rule) {
					found = true
				}
			}
			if !found {
				var rules []string
				for _, dg := range diags {
					rules = append(rules, fmt.Sprintf("%s: %s", dg.Rule, dg.Msg))
				}
				t.Fatalf("mutation %s flagged under wrong rule:\n%s",
					tc.name, strings.Join(rules, "\n"))
			}
		})
	}
}

// TestPackedCheckpointOddLanes exercises lane checkpoint round-trips at
// non-power-of-two lane counts with packing enabled: partial-word lane
// masks, tail-lane extraction, and restore into a different lane index
// must all stay bit-exact.
func TestPackedCheckpointOddLanes(t *testing.T) {
	d := compileSrc(t, packTestSrc)
	ids := make([]netlist.SignalID, 0, 4)
	for _, name := range []string{"a", "b", "c", "w"} {
		id, _ := d.SignalByName(name)
		ids = append(ids, id)
	}
	for _, lanes := range []int{3, 17, 63} {
		t.Run(fmt.Sprintf("lanes%d", lanes), func(t *testing.T) {
			run, err := NewBatchCCSS(d, BatchOptions{Lanes: lanes, Cp: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer run.Close()
			if run.PackStats().PackedOps == 0 {
				t.Fatal("packing did not engage")
			}
			poke := func(b *BatchCCSS, rng *rand.Rand) {
				for _, id := range ids {
					for l := 0; l < lanes; l++ {
						b.PokeLane(l, id, rng.Uint64())
					}
				}
			}
			rng := rand.New(rand.NewSource(int64(lanes)))
			for cyc := 0; cyc < 25; cyc++ {
				poke(run, rng)
				if err := run.Step(1); err != nil {
					t.Fatal(err)
				}
			}
			snaps := make([]*State, lanes)
			for l := range snaps {
				snaps[l] = run.CaptureLaneState(l)
			}
			// Restore each snapshot into the reversed lane index of a fresh
			// engine: lane extraction must not depend on lane position.
			resumed, err := NewBatchCCSS(d, BatchOptions{Lanes: lanes, Cp: 8})
			if err != nil {
				t.Fatal(err)
			}
			defer resumed.Close()
			for l := range snaps {
				if err := resumed.RestoreLaneState(lanes-1-l, snaps[l]); err != nil {
					t.Fatal(err)
				}
			}
			rng2 := rand.New(rand.NewSource(int64(lanes) * 7))
			for cyc := 0; cyc < 25; cyc++ {
				vals := make([]uint64, len(ids)*lanes)
				for i := range vals {
					vals[i] = rng2.Uint64()
				}
				for i, id := range ids {
					for l := 0; l < lanes; l++ {
						run.PokeLane(l, id, vals[i*lanes+l])
						resumed.PokeLane(lanes-1-l, id, vals[i*lanes+l])
					}
				}
				if err := run.Step(1); err != nil {
					t.Fatal(err)
				}
				if err := resumed.Step(1); err != nil {
					t.Fatal(err)
				}
				for l := 0; l < lanes; l++ {
					got := batchLaneState(resumed, lanes-1-l)
					want := batchLaneState(run, l)
					if got != want {
						t.Fatalf("cyc %d lane %d diverged:\nresumed: %s\norig:    %s",
							cyc, l, got, want)
					}
				}
			}
		})
	}
}
