package sim

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// wideSrc builds a wide, always-active design: n independent counter
// cones, each a chain-long arithmetic pipe, all in one DAG level. The
// level's static cost clears the sparse threshold, so the parallel
// engines actually dispatch it to the worker pool — randomly generated
// circuits are too thin and take the inline path.
func wideSrc(n, chain int) string {
	var b strings.Builder
	b.WriteString("circuit Wide :\n  module Wide :\n")
	b.WriteString("    input clock : Clock\n    input en : UInt<32>\n")
	b.WriteString("    output o : UInt<32>\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "    reg r%d : UInt<32>, clock\n", i)
		fmt.Fprintf(&b, "    node n%d_0 = xor(r%d, UInt<32>(%d))\n", i, i, i+1)
		for k := 1; k < chain; k++ {
			fmt.Fprintf(&b, "    node n%d_%d = tail(add(n%d_%d, UInt<32>(%d)), 1)\n",
				i, k, i, k-1, k+i)
		}
		fmt.Fprintf(&b, "    r%d <= tail(add(n%d_%d, en), 1)\n", i, i, chain-1)
	}
	b.WriteString("    o <= r0\n")
	return b.String()
}

// TestParallelPanicDegrades pins the panic-isolation contract: a worker
// panic mid-level is recovered into an error, the cycle completes with
// correct results, the engine downshifts to inline evaluation, and the
// whole run stays bit-identical to the sequential engine.
func TestParallelPanicDegrades(t *testing.T) {
	d := compileSrc(t, wideSrc(120, 12))
	ref, err := NewCCSS(d, CCSSOptions{Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallelCCSS(d, ParallelOptions{Cp: 8, Workers: 4, SerialCutoff: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()

	// Fire exactly once, on the 30th pooled dispatch of a follower
	// worker (never the dispatcher thread), so the panic unwinds inside
	// a pool goroutine mid-level.
	var dispatches atomic.Int64
	var fired atomic.Bool
	par.SetFailpoint(func(level, wid int) {
		if wid != 0 && dispatches.Add(1) == 30 {
			fired.Store(true)
			panic("injected worker fault")
		}
	})

	en := sigID(t, par, "en")
	for cyc := 0; cyc < 80; cyc++ {
		v := uint64(cyc * 7)
		ref.Poke(en, v)
		par.Poke(en, v)
		if err := ref.Step(1); err != nil {
			t.Fatal(err)
		}
		if err := par.Step(1); err != nil {
			t.Fatalf("cyc %d: %v", cyc, err)
		}
		if a, b := archState(ref), archState(par); a != b {
			t.Fatalf("cyc %d: degraded engine diverged:\nseq: %s\npar: %s", cyc, a, b)
		}
	}
	if !fired.Load() {
		t.Fatal("failpoint never fired (pool not engaged?)")
	}
	if !par.Degraded() {
		t.Fatal("engine not marked degraded after worker panic")
	}
	if got := par.Stats().WorkerPanics; got != 1 {
		t.Fatalf("WorkerPanics = %d, want 1", got)
	}
	var wp *WorkerPanicError
	if !errors.As(par.LastPanic(), &wp) {
		t.Fatalf("LastPanic = %v, want *WorkerPanicError", par.LastPanic())
	}
	if wp.Value != "injected worker fault" || len(wp.Stack) == 0 || wp.Worker == 0 {
		t.Fatalf("panic context not captured: worker=%d value=%v stack=%d bytes",
			wp.Worker, wp.Value, len(wp.Stack))
	}

	// Reset clears the degradation (satellite: Reset scrubs robustness
	// counters) and the pool comes back.
	par.SetFailpoint(nil)
	par.Reset()
	if par.Degraded() || par.LastPanic() != nil || par.Stats().WorkerPanics != 0 {
		t.Fatalf("Reset left degradation state: degraded=%v panics=%d",
			par.Degraded(), par.Stats().WorkerPanics)
	}
	if err := par.Step(10); err != nil {
		t.Fatal(err)
	}
}

// TestParallelPanicEveryDispatch: even a failpoint that fires on every
// pooled dispatch only panics once — the first recovery downshifts the
// engine off the pool for the rest of the run.
func TestParallelPanicEveryDispatch(t *testing.T) {
	d := compileSrc(t, wideSrc(100, 10))
	ref, err := NewCCSS(d, CCSSOptions{Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallelCCSS(d, ParallelOptions{Cp: 8, Workers: 2, SerialCutoff: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	par.SetFailpoint(func(level, wid int) { panic("always") })

	en := sigID(t, par, "en")
	for cyc := 0; cyc < 50; cyc++ {
		v := uint64(cyc * 3)
		ref.Poke(en, v)
		par.Poke(en, v)
		if err := ref.Step(1); err != nil {
			t.Fatal(err)
		}
		if err := par.Step(1); err != nil {
			t.Fatal(err)
		}
		if a, b := archState(ref), archState(par); a != b {
			t.Fatalf("cyc %d: diverged:\nseq: %s\npar: %s", cyc, a, b)
		}
	}
	if got := par.Stats().WorkerPanics; got != 1 {
		t.Fatalf("WorkerPanics = %d, want exactly 1 (degradation must stick)", got)
	}
}

// TestBatchPanicDegrades: the lane-parallel pool recovers a worker
// panic, finishes the cycle inline, and the surviving run matches a
// clean single-threaded batch run lane for lane.
func TestBatchPanicDegrades(t *testing.T) {
	d := compileSrc(t, wideSrc(120, 12))
	const lanes = 4
	clean, err := NewBatchCCSS(d, BatchOptions{Cp: 8, Lanes: lanes})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := NewBatchCCSS(d, BatchOptions{Cp: 8, Lanes: lanes, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()

	var dispatches atomic.Int64
	var fired atomic.Bool
	faulty.SetFailpoint(func(wid int) {
		if dispatches.Add(1) == 25 {
			fired.Store(true)
			panic("injected batch fault")
		}
	})

	en, ok := d.SignalByName("en")
	if !ok {
		t.Fatal("no en input")
	}
	for cyc := 0; cyc < 60; cyc++ {
		for l := 0; l < lanes; l++ {
			v := uint64(cyc*7 + l*1000)
			clean.PokeLane(l, en, v)
			faulty.PokeLane(l, en, v)
		}
		if err := clean.Step(1); err != nil {
			t.Fatal(err)
		}
		if err := faulty.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	if !fired.Load() {
		t.Fatal("batch failpoint never fired (pool not engaged?)")
	}
	if !faulty.Degraded() {
		t.Fatal("batch engine not marked degraded")
	}
	if got := faulty.Stats().WorkerPanics; got != 1 {
		t.Fatalf("WorkerPanics = %d, want 1", got)
	}
	var wp *WorkerPanicError
	if !errors.As(faulty.LastPanic(), &wp) {
		t.Fatalf("LastPanic = %v, want *WorkerPanicError", faulty.LastPanic())
	}
	for l := 0; l < lanes; l++ {
		a, b := clean.CaptureLaneState(l), faulty.CaptureLaneState(l)
		if !wordsEqual(a.Regs, b.Regs) || !wordsEqual(a.Mems, b.Mems) {
			t.Fatalf("lane %d diverged after batch worker panic", l)
		}
	}

	// Reset revives the engine and clears the degradation.
	faulty.SetFailpoint(nil)
	faulty.Reset()
	if faulty.Degraded() || faulty.Stats().WorkerPanics != 0 {
		t.Fatal("Reset left batch degradation state")
	}
	if err := faulty.Step(5); err != nil {
		t.Fatal(err)
	}
}
