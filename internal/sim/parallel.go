package sim

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"essent/internal/netlist"
)

// ParallelCCSS evaluates active partitions concurrently, level by level
// over the partition DAG. Partitions on the same level are mutually
// independent (no data or ordering path connects them), so their
// evaluations touch disjoint value-table regions; activity flags use
// atomic stores because two same-level partitions may wake the same
// consumer. This is the thread-parallel extension of the paper's CCSS
// engine — the direction the authors' follow-on work on parallel RTL
// simulation explores.
//
// Semantics match CCSS exactly except printf interleaving: printfs from
// partitions on the same level may appear in any order.
type ParallelCCSS struct {
	*CCSS

	// levels lists runtime partition IDs per level, ascending.
	levels [][]int32
	// flags32 replaces the sequential engine's bool flags (atomic access).
	flags32 []uint32

	workers int
	// wm holds one machine view per worker: shared value table, memories,
	// and instruction stream; private scratch, stats, and error slot.
	wm []*machine
	// wDirty collects non-elided register commits per worker.
	wDirty [][]int32

	outMu sync.Mutex
	// mergedStats is the snapshot returned by Stats().
	mergedStats Stats
}

// ParallelOptions configures the parallel engine.
type ParallelOptions struct {
	// Cp is the partitioning threshold (0 = 8).
	Cp int
	// Workers is the goroutine count. An explicit value is honored
	// exactly, with no upper cap — hosts with more than 8 cores get more
	// than 8 workers if they ask for them. Zero selects the default:
	// GOMAXPROCS capped at 8, a conservative bound for the level-barrier
	// synchronization cost on very wide hosts.
	Workers int
	// NoFuse disables superinstruction fusion (ablation knob).
	NoFuse bool
}

// defaultWorkerCap bounds only the Workers=0 default, not explicit
// requests: per-level work on the evaluation designs saturates around
// eight workers, and the dispatch barrier costs grow past it.
const defaultWorkerCap = 8

// NewParallelCCSS compiles a parallel CCSS simulator.
func NewParallelCCSS(d *netlist.Design, opts ParallelOptions) (*ParallelCCSS, error) {
	base, err := NewCCSS(d, CCSSOptions{Cp: opts.Cp, NoFuse: opts.NoFuse})
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > defaultWorkerCap {
			workers = defaultWorkerCap
		}
	}
	if workers < 1 {
		workers = 1
	}
	p := &ParallelCCSS{CCSS: base, workers: workers}
	plan := base.plan
	p.levels = make([][]int32, plan.NumLevels)
	for pi, lvl := range plan.PartLevels {
		p.levels[lvl] = append(p.levels[lvl], int32(pi))
	}
	p.flags32 = make([]uint32, len(base.parts))
	// Worker machine views: share table/memories/pending buffers, own
	// scratch and counters. Display output serializes through a locked
	// writer.
	p.wm = make([]*machine, workers)
	p.wDirty = make([][]int32, workers)
	for w := 0; w < workers; w++ {
		mc := *base.machine
		maxWords := len(base.machine.scratch[0])
		for i := range mc.scratch {
			mc.scratch[i] = make([]uint64, maxWords)
		}
		mc.stats = Stats{}
		mc.out = &lockedWriter{mu: &p.outMu, w: io.Discard}
		p.wm[w] = &mc
	}
	p.wakeAll32()
	return p, nil
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(b []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(b)
}

// SetOutput directs printf output (serialized across workers).
func (p *ParallelCCSS) SetOutput(w io.Writer) {
	for _, mc := range p.wm {
		mc.out.(*lockedWriter).w = w
	}
	p.machine.out = w
}

func (p *ParallelCCSS) wakeAll32() {
	for i := range p.flags32 {
		p.flags32[i] = 1
	}
	for i := range p.prevIn {
		p.prevIn[i] = ^uint64(0)
	}
}

// Reset restores initial state and re-arms every partition.
func (p *ParallelCCSS) Reset() {
	p.machine.Reset()
	for w := range p.wDirty {
		p.wDirty[w] = p.wDirty[w][:0]
	}
	for _, mc := range p.wm {
		mc.evalErr = nil
	}
	p.wakeAll32()
}

// PokeMem writes a memory word and wakes dependent read-port partitions.
func (p *ParallelCCSS) PokeMem(mem, addr int, v uint64) {
	p.machine.PokeMem(mem, addr, v)
	for _, q := range p.memReaderParts[mem] {
		p.flags32[q] = 1
	}
}

// Stats returns merged counters across the dispatcher and all workers.
func (p *ParallelCCSS) Stats() *Stats {
	merged := p.machine.stats
	for _, mc := range p.wm {
		merged.OpsEvaluated += mc.stats.OpsEvaluated
		merged.SignalChanges += mc.stats.SignalChanges
		merged.PartEvals += mc.stats.PartEvals
		merged.OutputCompares += mc.stats.OutputCompares
		merged.Wakes += mc.stats.Wakes
	}
	p.mergedStats = merged
	return &p.mergedStats
}

// Step simulates n cycles.
func (p *ParallelCCSS) Step(n int) error {
	for i := 0; i < n; i++ {
		if err := p.stepOne(); err != nil {
			return err
		}
	}
	return nil
}

// evalPartition runs one partition on a worker view, using atomic flag
// stores for wakes.
func (p *ParallelCCSS) evalPartition(wm *machine, worker int, pi int32) {
	part := &p.parts[pi]
	wm.stats.PartEvals++
	t := wm.t
	for oi := range part.outputs {
		o := &part.outputs[oi]
		copy(p.oldVals[o.oldOff:o.oldOff+o.words], t[o.off:o.off+o.words])
	}
	wm.runRange(part.schedStart, part.schedEnd)
	for oi := range part.outputs {
		o := &part.outputs[oi]
		wm.stats.OutputCompares++
		changed := false
		for w := int32(0); w < o.words; w++ {
			if t[o.off+w] != p.oldVals[o.oldOff+w] {
				changed = true
				break
			}
		}
		if changed {
			wm.stats.SignalChanges++
			for _, q := range o.consumers {
				atomic.StoreUint32(&p.flags32[q], 1)
			}
			wm.stats.Wakes += uint64(len(o.consumers))
		}
	}
	if len(part.regs) > 0 {
		p.wDirty[worker] = append(p.wDirty[worker], part.regs...)
	}
}

func (p *ParallelCCSS) stepOne() error {
	m := p.machine
	if m.stopErr != nil {
		return m.stopErr
	}
	t := m.t

	// Keep worker views' cycle counters current (error reporting reads
	// them).
	for _, mc := range p.wm {
		mc.cycle = m.cycle
	}

	// Serial preamble: input change detection.
	for i := range p.inputs {
		in := &p.inputs[i]
		m.stats.InputChecks++
		changed := false
		for w := int32(0); w < in.words; w++ {
			if t[in.off+w] != p.prevIn[in.prevOff+w] {
				changed = true
				p.prevIn[in.prevOff+w] = t[in.off+w]
			}
		}
		if changed {
			for _, q := range in.consumers {
				p.flags32[q] = 1
			}
			m.stats.Wakes += uint64(len(in.consumers))
		}
	}

	// Level-by-level parallel evaluation.
	active := make([]int32, 0, 64)
	for _, level := range p.levels {
		active = active[:0]
		for _, pi := range level {
			m.stats.PartChecks++
			if p.flags32[pi] != 0 || p.parts[pi].alwaysOn {
				p.flags32[pi] = 0
				active = append(active, pi)
			}
		}
		switch {
		case len(active) == 0:
		case len(active) < 4 || p.workers == 1:
			for _, pi := range active {
				p.evalPartition(p.wm[0], 0, pi)
			}
		default:
			var next atomic.Int64
			var wg sync.WaitGroup
			nw := p.workers
			if nw > len(active) {
				nw = len(active)
			}
			wg.Add(nw)
			for w := 0; w < nw; w++ {
				go func(worker int) {
					defer wg.Done()
					wm := p.wm[worker]
					for {
						i := next.Add(1) - 1
						if int(i) >= len(active) {
							return
						}
						p.evalPartition(wm, worker, active[i])
					}
				}(w)
			}
			wg.Wait()
		}
	}

	// Collect worker errors (first non-nil; order across same-level
	// partitions is nondeterministic by construction).
	var err error
	for _, mc := range p.wm {
		if mc.evalErr != nil && err == nil {
			err = mc.evalErr
		}
		mc.evalErr = nil
	}

	// Serial commit: non-elided registers, then pending memory writes.
	for w := range p.wDirty {
		for _, ri := range p.wDirty[w] {
			no, oo := p.regNext[ri], p.regOut[ri]
			changed := false
			for k := int32(0); k < no.words(); k++ {
				if t[oo.off+k] != t[no.off+k] {
					t[oo.off+k] = t[no.off+k]
					changed = true
				}
			}
			m.stats.OutputCompares++
			if changed {
				m.stats.SignalChanges++
				for _, q := range p.regReaderParts[ri] {
					p.flags32[q] = 1
				}
				m.stats.Wakes += uint64(len(p.regReaderParts[ri]))
			}
		}
		p.wDirty[w] = p.wDirty[w][:0]
	}
	for i := range m.memWrites {
		w := &m.memWrites[i]
		if !w.pendValid {
			continue
		}
		w.pendValid = false
		ms := &m.mems[w.mem]
		if w.pendAddr >= uint64(ms.depth) {
			continue
		}
		base := int32(w.pendAddr) * ms.nw
		changed := false
		for k := int32(0); k < ms.nw; k++ {
			var v uint64
			if int(k) < len(w.pendData) {
				v = w.pendData[k]
			}
			if ms.words[base+k] != v {
				ms.words[base+k] = v
				changed = true
			}
		}
		if changed {
			for _, q := range p.memReaderParts[w.mem] {
				p.flags32[q] = 1
			}
			m.stats.Wakes += uint64(len(p.memReaderParts[w.mem]))
		}
	}

	m.cycle++
	m.stats.Cycles++
	if err != nil {
		m.stopErr = err
	}
	return err
}

var _ Simulator = (*ParallelCCSS)(nil)
