package sim

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"essent/internal/netlist"
	"essent/internal/verify"
)

// ParallelCCSS evaluates active partitions concurrently, walking the
// barrier-level schedule computed by the planner (sched.CCSSPlan
// LevelSpecs). Partitions on the same DAG level are mutually independent
// (no data or ordering path connects them), so their evaluations touch
// disjoint value-table regions. This is the thread-parallel extension of
// the paper's CCSS engine, shaped by the static bulk-synchronous style of
// Manticore/GSIM: all load balancing happens at compile time.
//
// Execution model:
//
//   - A persistent pool of workers-1 goroutines lives for the simulator's
//     lifetime, parked on a phase barrier. Dispatching a level is one
//     barrier release + one completion wait — no goroutine spawning and
//     no WaitGroup churn per level per cycle.
//   - Each parallel level is pre-chunked at construction into per-worker
//     spans of roughly equal static cost (internal/partition cost model),
//     plus a small work-stealing tail dispensed by an atomic counter for
//     residual imbalance. The common case touches no shared cacheline.
//   - Wakes from concurrently evaluated partitions go to per-worker wake
//     buffers, merged serially at the level boundary. Consumers of a
//     partition's outputs are never on the producer's own level (the
//     planner guarantees it; see sched levels_test), so deferring the
//     flag writes to the boundary is semantics-preserving — and it
//     removes the shared atomic flag array entirely.
//   - Per-level activity counters let the dispatcher skip whole inactive
//     levels without scanning any flags, and route low-cost levels
//     through an inline serial path that skips the barrier: parking the
//     pool is only worth it when a level has enough active work.
//
// Semantics match CCSS exactly except printf interleaving: printfs from
// partitions on the same level may appear in any order. Merged Stats are
// deterministic across worker counts (every counter is a sum of
// per-partition quantities, and the dispatch decisions depend only on
// deterministic activity state).
type ParallelCCSS struct {
	*CCSS

	workers int
	// serialCutoff is the active-cost threshold below which a level runs
	// inline on the dispatcher instead of crossing the barrier. It is
	// applied per level as a precomputed minimum active count
	// (levelRun.minActive), never as runtime cost arithmetic.
	serialCutoff int64

	// levels is the barrier schedule (one entry per plan LevelSpec).
	levels []levelRun
	// lvlOf maps runtime partition ID -> levels index (plan.SpecOf).
	lvlOf []int32
	// levelActive counts flagged partitions per level; maintained only by
	// the dispatcher (wake merges are serial), so a plain int32 suffices.
	// Keeping it to a single counter keeps wakePart — the hottest
	// bookkeeping op — to one branch and one increment.
	levelActive []int32

	// wm holds one machine view per worker: shared value table, memories,
	// and instruction stream; private scratch, stats, and error slot.
	// wm[0] is the dispatcher's own view.
	wm []*machine
	// wDirty collects non-elided register commits per worker.
	wDirty [][]int32
	// wakeBuf collects consumer wakes per worker during a parallel level.
	wakeBuf [][]int32

	bar      *phaseBarrier
	curLevel int32
	tailNext atomic.Int64
	started  bool
	closed   bool
	quit     atomic.Bool

	// wPanic records a recovered panic per worker for the level in
	// flight (nil when the span completed normally); wCur tracks the
	// partition each worker was evaluating, for the error's context.
	wPanic []error
	wCur   []int32
	// degraded routes every subsequent level through the inline serial
	// path after a recovered worker panic: the pool stays parked, the
	// run keeps going with sequential CCSS semantics. Reset clears it.
	degraded  bool
	lastPanic error
	// failpoint, when set, runs at the start of every span with
	// (level, worker) — the fault-injection hook for exercising the
	// recovery path.
	failpoint func(level, wid int)

	outMu sync.Mutex
	// mergedStats is the snapshot returned by Stats().
	mergedStats Stats
}

// levelRun is the runtime form of one sched.LevelSpec.
type levelRun struct {
	// parts lists runtime partition IDs in execution order.
	parts []int32
	// [start,end) equals parts when the IDs are one contiguous range —
	// always true with the planner's level-major numbering. The inline
	// path then scans flags linearly, exactly like the sequential engine.
	start, end int32
	contig     bool
	// bounds[w]:bounds[w+1] is worker w's pre-chunked span (parallel
	// specs only); parts[tail:] is the shared work-stealing pool.
	bounds []int32
	tail   int32
	serial bool
	// alwaysOn partitions run even when unflagged; their count feeds the
	// skip / inline decisions.
	alwaysOn int
	// aoBias is a constant added to the spec's levelActive counter when it
	// contains always-on partitions, so the dispatcher's skip test is a
	// bare levelActive[li] == 0 compare on a dense array — idle specs
	// never load this struct at all.
	aoBias int32
	cost   int64
	// minActive is the active-partition count at which crossing the
	// barrier beats running inline: SerialCutoff divided by the level's
	// mean partition cost, precomputed so the per-cycle dispatch decision
	// is a single integer compare (no runtime cost accounting).
	minActive int32
	// elided locates the table words of registers this level updates in
	// place; elSnap is their pre-dispatch snapshot. Partition evaluation
	// is idempotent for everything except in-place register updates, so
	// panic recovery must roll these back before re-running the level.
	elided []operand
	elSnap []uint64
}

// ParallelOptions configures the parallel engine.
type ParallelOptions struct {
	// Cp is the partitioning threshold (0 = 8).
	Cp int
	// Workers is the total worker count including the dispatcher. An
	// explicit value is honored exactly, with no upper cap — hosts with
	// more than 8 cores get more than 8 workers if they ask for them.
	// Zero selects the default: GOMAXPROCS capped at 8, a conservative
	// bound for the level-barrier synchronization cost on very wide
	// hosts.
	Workers int
	// NoFuse disables superinstruction fusion (ablation knob).
	NoFuse bool
	// SerialCutoff overrides the active-cost threshold below which a
	// level is evaluated inline on the dispatcher (0 = default). Tests
	// set 1 to force every active level through the worker pool.
	SerialCutoff int64
	// Verify selects static-verification enforcement (strict by default).
	Verify verify.Mode
}

// defaultWorkerCap bounds only the Workers=0 default, not explicit
// requests: per-level work on the evaluation designs saturates around
// eight workers, and the barrier cost grows past it.
const defaultWorkerCap = 8

// defaultSerialCutoff is the active static cost (≈ns of single-threaded
// evaluation) below which crossing the barrier costs more than it saves.
const defaultSerialCutoff = 8192

// NewParallelCCSS compiles a parallel CCSS simulator.
func NewParallelCCSS(d *netlist.Design, opts ParallelOptions) (*ParallelCCSS, error) {
	base, err := NewCCSS(d, CCSSOptions{Cp: opts.Cp, NoFuse: opts.NoFuse,
		Verify: opts.Verify})
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > defaultWorkerCap {
			workers = defaultWorkerCap
		}
	}
	if workers < 1 {
		workers = 1
	}
	cutoff := opts.SerialCutoff
	if cutoff <= 0 {
		cutoff = defaultSerialCutoff
	}
	p := &ParallelCCSS{CCSS: base, workers: workers, serialCutoff: cutoff}
	plan := base.plan
	p.lvlOf = plan.SpecOf
	p.levels = make([]levelRun, len(plan.LevelSpecs))
	for li, spec := range plan.LevelSpecs {
		lv := levelRun{parts: toInt32s(spec.Parts), serial: spec.Serial,
			cost: spec.Cost}
		lv.contig = true
		for i, pi := range lv.parts {
			if pi != lv.parts[0]+int32(i) {
				lv.contig = false
				break
			}
		}
		if lv.contig {
			lv.start = lv.parts[0]
			lv.end = lv.start + int32(len(lv.parts))
		}
		for _, pi := range lv.parts {
			if base.parts[pi].alwaysOn {
				lv.alwaysOn++
			}
		}
		if lv.alwaysOn > 0 {
			lv.aoBias = 1 << 20
		}
		if !lv.serial {
			lv.bounds, lv.tail = chunkLevel(lv.parts, plan.PartCosts, workers)
			avg := lv.cost / int64(len(lv.parts))
			if avg < 1 {
				avg = 1
			}
			lv.minActive = int32((cutoff + avg - 1) / avg)
			if lv.minActive < 2 {
				lv.minActive = 2
			}
		}
		p.levels[li] = lv
	}

	// Attach each elided (in-place-updated) register to the parallel
	// level that evaluates its writer partition: the dispatcher
	// snapshots those words before releasing the pool so a recovered
	// worker panic can roll the level back and rerun it exactly once.
	if plan.NumElided > 0 {
		partOf := map[int]int32{}
		for pi := range plan.Parts {
			for _, n := range plan.Parts[pi].Members {
				partOf[n] = int32(pi)
			}
		}
		for ri := range d.Regs {
			if !plan.Elided[ri] {
				continue
			}
			pi, ok := partOf[int(d.Regs[ri].Next)]
			if !ok {
				continue
			}
			lv := &p.levels[plan.SpecOf[pi]]
			if lv.serial {
				continue // serial specs never cross the pool
			}
			lv.elided = append(lv.elided, base.regOut[ri])
		}
		for li := range p.levels {
			lv := &p.levels[li]
			n := 0
			for _, o := range lv.elided {
				n += int(o.words())
			}
			if n > 0 {
				lv.elSnap = make([]uint64, n)
			}
		}
	}
	p.levelActive = make([]int32, len(p.levels))

	// Worker machine views: share table/memories/pending buffers, own
	// scratch and counters. Display output serializes through a locked
	// writer that follows the engine's current sink, so the default
	// matches the sequential engine and SetOutput needs no fan-out.
	p.wm = make([]*machine, workers)
	p.wDirty = make([][]int32, workers)
	p.wakeBuf = make([][]int32, workers)
	p.wPanic = make([]error, workers)
	p.wCur = make([]int32, workers)
	for w := 0; w < workers; w++ {
		mc := *base.machine
		maxWords := len(base.machine.scratch[0])
		for i := range mc.scratch {
			mc.scratch[i] = make([]uint64, maxWords)
		}
		mc.stats = Stats{}
		mc.out = &lockedWriter{p: p}
		p.wm[w] = &mc
	}
	p.bar = newPhaseBarrier(workers - 1)
	p.wakeAllPar()
	return p, nil
}

// chunkLevel splits a level's partitions into nw spans of roughly equal
// static cost, reserving a trailing ~1/8-cost pool for work stealing.
// Tiny levels (fewer than 4 partitions per worker) skip the static split
// entirely: everything goes through the stealing counter.
func chunkLevel(parts []int32, cost []int64, nw int) ([]int32, int32) {
	bounds := make([]int32, nw+1)
	if len(parts) < 4*nw {
		return bounds, 0
	}
	var total int64
	for _, pi := range parts {
		total += cost[pi]
	}
	// Trailing steal pool: at least nw items, roughly total/8 cost.
	tail := len(parts)
	var stealCost int64
	for tail > 0 && (stealCost < total/8 || len(parts)-tail < nw) {
		tail--
		stealCost += cost[parts[tail]]
	}
	prefixCost := total - stealCost
	var acc int64
	w := 1
	for i := 0; i < tail && w < nw; i++ {
		acc += cost[parts[i]]
		if acc*int64(nw) >= prefixCost*int64(w) {
			bounds[w] = int32(i + 1)
			w++
		}
	}
	for ; w <= nw; w++ {
		bounds[w] = int32(tail)
	}
	return bounds, int32(tail)
}

// lockedWriter serializes printf output across workers and delegates to
// the engine's current output sink.
type lockedWriter struct{ p *ParallelCCSS }

func (lw *lockedWriter) Write(b []byte) (int, error) {
	lw.p.outMu.Lock()
	defer lw.p.outMu.Unlock()
	return lw.p.machine.out.Write(b)
}

// SetOutput directs printf output (serialized across workers).
func (p *ParallelCCSS) SetOutput(w io.Writer) {
	p.outMu.Lock()
	p.machine.out = w
	p.outMu.Unlock()
}

// --- phase barrier ---

// phaseBarrier is the park point for the persistent pool. The dispatcher
// opens a phase by bumping a monotone counter (the generalization of a
// sense-reversing barrier: followers compare against a locally tracked
// epoch, so no flag ever needs resetting); followers spin briefly on the
// counter and park on a buffered channel when the gap between levels is
// long. Completion is a single atomic countdown with one channel send by
// the last arriver — at most one barrier crossing per dispatched level.
type phaseBarrier struct {
	phase   atomic.Uint64
	pending atomic.Int64
	done    chan struct{}
	asleep  []atomic.Uint32
	wake    []chan struct{}
}

func newPhaseBarrier(followers int) *phaseBarrier {
	b := &phaseBarrier{done: make(chan struct{}, 1)}
	b.asleep = make([]atomic.Uint32, followers)
	b.wake = make([]chan struct{}, followers)
	for i := range b.wake {
		b.wake[i] = make(chan struct{}, 1)
	}
	return b
}

// release opens the next phase. Only parked followers get a channel
// send; spinners observe the counter alone, so back-to-back levels stay
// wait-free.
func (b *phaseBarrier) release() {
	b.pending.Store(int64(len(b.wake)) + 1)
	b.phase.Add(1)
	for w := range b.wake {
		if b.asleep[w].Swap(0) == 1 {
			select {
			case b.wake[w] <- struct{}{}:
			default:
			}
		}
	}
}

// await blocks follower w until the phase counter reaches target.
// Tokens in the wake channel are pure hints — only the counter decides —
// so stale tokens from racing parks cost one spurious loop, never
// correctness.
func (b *phaseBarrier) await(w int, target uint64) {
	for spins := 0; ; spins++ {
		if b.phase.Load() >= target {
			return
		}
		switch {
		case spins < 64:
			// Busy-spin: the dispatcher is usually between two adjacent
			// active levels.
		case spins < 192:
			runtime.Gosched()
		default:
			b.asleep[w].Store(1)
			if b.phase.Load() >= target {
				b.asleep[w].Store(0)
				return
			}
			<-b.wake[w]
		}
	}
}

// arrive reports a follower's span completion.
func (b *phaseBarrier) arrive() {
	if b.pending.Add(-1) == 0 {
		b.done <- struct{}{}
	}
}

// waitDone is the dispatcher's own arrival plus the completion wait.
func (b *phaseBarrier) waitDone() {
	if b.pending.Add(-1) == 0 {
		return
	}
	<-b.done
}

func (p *ParallelCCSS) startPool() {
	p.started = true
	for w := 1; w < p.workers; w++ {
		go p.workerLoop(w)
	}
}

func (p *ParallelCCSS) workerLoop(wid int) {
	var epoch uint64
	for {
		epoch++
		p.bar.await(wid-1, epoch)
		if p.quit.Load() {
			return
		}
		p.runSpansSafe(wid)
		p.bar.arrive()
	}
}

// WorkerPanicError is a panic recovered inside a pool worker, tagged
// with enough schedule context to localize the failing partition.
type WorkerPanicError struct {
	Worker    int
	Level     int
	Partition int32
	Value     any
	Stack     []byte
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("sim: worker %d panic at level %d partition %d: %v",
		e.Worker, e.Level, e.Partition, e.Value)
}

// runSpansSafe wraps runSpans with panic recovery so a failing
// partition never unwinds past the barrier: the worker records the
// panic, arrives normally, and the dispatcher handles degradation
// after the completion wait. Both the pool followers and the
// dispatcher's own span run through it.
func (p *ParallelCCSS) runSpansSafe(wid int) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 8192)
			buf = buf[:runtime.Stack(buf, false)]
			p.wPanic[wid] = &WorkerPanicError{
				Worker:    wid,
				Level:     int(p.curLevel),
				Partition: p.wCur[wid],
				Value:     r,
				Stack:     buf,
			}
		}
	}()
	if fp := p.failpoint; fp != nil {
		fp(int(p.curLevel), wid)
	}
	p.runSpans(wid)
}

// Close retires the worker pool. The engine stays usable — subsequent
// steps take the inline path — so deferred Close in tests and the
// experiment harness is always safe.
func (p *ParallelCCSS) Close() {
	if p.closed {
		return
	}
	p.closed = true
	if !p.started {
		return
	}
	p.quit.Store(true)
	p.bar.release()
}

// --- per-cycle evaluation ---

// wakePart flags a partition and maintains the per-level activity
// counters. Dispatcher-only: parallel-phase wakes go through wakeBuf.
func (p *ParallelCCSS) wakePart(q int32) {
	if !p.flags[q] {
		p.flags[q] = true
		p.levelActive[p.lvlOf[q]]++
	}
}

// wakeAllPar flags every partition and saturates the level counters.
func (p *ParallelCCSS) wakeAllPar() {
	p.CCSS.wakeAll()
	for li := range p.levels {
		p.levelActive[li] = int32(len(p.levels[li].parts)) + p.levels[li].aoBias
	}
}

// Reset restores initial state, clears all counter snapshots (merged and
// per-worker), and re-arms every partition.
func (p *ParallelCCSS) Reset() {
	p.machine.Reset()
	fused := p.machine.stats.FusedPairs
	p.machine.stats = Stats{FusedPairs: fused}
	for w := range p.wm {
		p.wm[w].stats = Stats{}
		p.wm[w].evalErr = nil
		p.wDirty[w] = p.wDirty[w][:0]
		p.wakeBuf[w] = p.wakeBuf[w][:0]
		p.wPanic[w] = nil
	}
	p.mergedStats = Stats{}
	p.degraded = false
	p.lastPanic = nil
	p.wakeAllPar()
}

// PokeMem writes a memory word and wakes dependent read-port partitions.
func (p *ParallelCCSS) PokeMem(mem, addr int, v uint64) {
	p.machine.PokeMem(mem, addr, v)
	p.poked = true
	for _, q := range p.memReaderParts[mem] {
		p.wakePart(q)
	}
}

// Stats returns merged counters across the dispatcher and all workers.
// The merge is deterministic across worker counts: every counter is a
// sum of per-partition quantities and the level dispatch decisions
// depend only on deterministic activity state.
func (p *ParallelCCSS) Stats() *Stats {
	merged := p.machine.stats
	for _, mc := range p.wm {
		merged.OpsEvaluated += mc.stats.OpsEvaluated
		merged.SignalChanges += mc.stats.SignalChanges
		merged.PartChecks += mc.stats.PartChecks
		merged.PartEvals += mc.stats.PartEvals
		merged.OutputCompares += mc.stats.OutputCompares
		merged.Wakes += mc.stats.Wakes
	}
	p.mergedStats = merged
	return &p.mergedStats
}

// Step simulates n cycles.
func (p *ParallelCCSS) Step(n int) error {
	for i := 0; i < n; i++ {
		if err := p.stepOne(); err != nil {
			return err
		}
	}
	return nil
}

// evalPart runs one partition on a worker view during a parallel phase.
// Wakes are buffered: consumers append to the worker's wake buffer for
// the serial merge at the level boundary. (The inline serial path uses
// evalDirect, whose wakes apply immediately — required inside fused
// serial specs where a consumer at a later level must still run this
// cycle.)
func (p *ParallelCCSS) evalPart(wm *machine, wid int, pi int32) {
	part := &p.parts[pi]
	p.wCur[wid] = pi
	wm.stats.PartEvals++
	t := wm.t
	for oi := range part.outputs {
		o := &part.outputs[oi]
		copy(p.oldVals[o.oldOff:o.oldOff+o.words], t[o.off:o.off+o.words])
	}
	wm.runRange(part.schedStart, part.schedEnd)
	for oi := range part.outputs {
		o := &part.outputs[oi]
		wm.stats.OutputCompares++
		changed := false
		for w := int32(0); w < o.words; w++ {
			if t[o.off+w] != p.oldVals[o.oldOff+w] {
				changed = true
				break
			}
		}
		if changed {
			wm.stats.SignalChanges++
			p.wakeBuf[wid] = append(p.wakeBuf[wid], o.consumers...)
			wm.stats.Wakes += uint64(len(o.consumers))
		}
	}
	if len(part.regs) > 0 {
		p.wDirty[wid] = append(p.wDirty[wid], part.regs...)
	}
}

// runSpans evaluates worker wid's share of the current parallel level:
// its pre-chunked span, then whatever remains in the steal pool. Flag
// reads/writes here are plain (not atomic): each partition is visited by
// exactly one worker (disjoint spans; the tail counter dispenses each
// index once), and no flag of the running level is concurrently written
// (wakes are buffered, and the planner forbids same-level consumers).
func (p *ParallelCCSS) runSpans(wid int) {
	lv := &p.levels[p.curLevel]
	wm := p.wm[wid]
	for _, pi := range lv.parts[lv.bounds[wid]:lv.bounds[wid+1]] {
		p.runPart(wm, wid, pi)
	}
	n := int64(len(lv.parts))
	base := int64(lv.tail)
	for {
		i := base + p.tailNext.Add(1) - 1
		if i >= n {
			return
		}
		p.runPart(wm, wid, lv.parts[i])
	}
}

func (p *ParallelCCSS) runPart(wm *machine, wid int, pi int32) {
	wm.stats.PartChecks++
	if p.flags[pi] {
		p.flags[pi] = false
	} else if !p.parts[pi].alwaysOn {
		return
	}
	p.evalPart(wm, wid, pi)
}

// runInline evaluates a level serially on the dispatcher, with direct
// wakes (so fused serial specs preserve the sequential engine's
// same-cycle forward triggering) and incremental counter maintenance.
func (p *ParallelCCSS) runInline(li int) {
	lv := &p.levels[li]
	wm := p.wm[0]
	flags := p.flags
	if lv.contig {
		for pi := lv.start; pi < lv.end; pi++ {
			wm.stats.PartChecks++
			if flags[pi] {
				flags[pi] = false
				p.levelActive[li]--
			} else if !p.parts[pi].alwaysOn {
				continue
			}
			p.evalDirect(wm, pi)
		}
		return
	}
	for _, pi := range lv.parts {
		wm.stats.PartChecks++
		if flags[pi] {
			flags[pi] = false
			p.levelActive[li]--
		} else if !p.parts[pi].alwaysOn {
			continue
		}
		p.evalDirect(wm, pi)
	}
}

// evalDirect is evalPart specialized for the inline serial path: direct
// wakes, dispatcher buffers. Kept separate from the buffered variant so
// the per-eval hot path carries no mode branch and no worker index.
func (p *ParallelCCSS) evalDirect(wm *machine, pi int32) {
	part := &p.parts[pi]
	wm.stats.PartEvals++
	t := wm.t
	oldVals := p.oldVals
	for oi := range part.outputs {
		o := &part.outputs[oi]
		copy(oldVals[o.oldOff:o.oldOff+o.words], t[o.off:o.off+o.words])
	}
	wm.runRange(part.schedStart, part.schedEnd)
	for oi := range part.outputs {
		o := &part.outputs[oi]
		wm.stats.OutputCompares++
		changed := false
		for w := int32(0); w < o.words; w++ {
			if t[o.off+w] != oldVals[o.oldOff+w] {
				changed = true
				break
			}
		}
		if changed {
			wm.stats.SignalChanges++
			for _, q := range o.consumers {
				p.wakePart(q)
			}
			wm.stats.Wakes += uint64(len(o.consumers))
		}
	}
	if len(part.regs) > 0 {
		p.wDirty[0] = append(p.wDirty[0], part.regs...)
	}
}

// runParallel dispatches one level across the pool: a single barrier
// release, the dispatcher working its own span, one completion wait,
// then the serial wake-buffer merge.
func (p *ParallelCCSS) runParallel(li int) {
	if !p.started {
		p.startPool()
	}
	for _, mc := range p.wm[1:] {
		mc.cycle = p.machine.cycle
	}
	// Snapshot the level's in-place-updated registers before any worker
	// can touch them (see levelRun.elided).
	if lv := &p.levels[li]; lv.elSnap != nil {
		t, pos := p.machine.t, 0
		for _, o := range lv.elided {
			nw := int(o.words())
			copy(lv.elSnap[pos:pos+nw], t[o.off:o.off+int32(nw)])
			pos += nw
		}
	}
	p.curLevel = int32(li)
	p.tailNext.Store(0)
	p.bar.release()
	p.runSpansSafe(0)
	p.bar.waitDone()
	// Every flag in the level was consumed by some worker; feedback
	// wakes (including self-wakes) re-arm below during the merge.
	p.levelActive[li] = p.levels[li].aoBias
	var pe error
	for w := range p.wPanic {
		if p.wPanic[w] != nil && pe == nil {
			pe = p.wPanic[w]
		}
		p.wPanic[w] = nil
	}
	if pe != nil {
		p.recoverLevel(li, pe)
		return
	}
	for w := range p.wakeBuf {
		for _, q := range p.wakeBuf[w] {
			p.wakePart(q)
		}
		p.wakeBuf[w] = p.wakeBuf[w][:0]
	}
}

// recoverLevel handles a recovered worker panic: degrade to sequential
// evaluation and rerun the level inline. A panicking worker may have
// left partition outputs half-written and the rest of its span
// unevaluated, which poisons the oldVals-based change detection — so
// discard the buffered wakes, roll back the level's in-place register
// updates (the one non-idempotent effect of partition evaluation; see
// levelRun.elided), flag every partition, and rerun the level on the
// dispatcher. With elided registers restored, already-evaluated
// partitions recompute identical results, unevaluated ones run now,
// and with every consumer flagged no wake can be missed. Later levels
// run inline this cycle; earlier levels re-evaluate (idempotently, they
// see unchanged inputs) next cycle. The degraded flag keeps all
// subsequent levels on the inline path until Reset.
func (p *ParallelCCSS) recoverLevel(li int, pe error) {
	p.degraded = true
	p.lastPanic = pe
	p.machine.stats.WorkerPanics++
	for w := range p.wakeBuf {
		p.wakeBuf[w] = p.wakeBuf[w][:0]
	}
	if lv := &p.levels[li]; lv.elSnap != nil {
		t, pos := p.machine.t, 0
		for _, o := range lv.elided {
			nw := int(o.words())
			copy(t[o.off:o.off+int32(nw)], lv.elSnap[pos:pos+nw])
			pos += nw
		}
	}
	p.wakeAllPar()
	p.runInline(li)
}

// Degraded reports whether a recovered worker panic has routed the
// engine to sequential evaluation.
func (p *ParallelCCSS) Degraded() bool { return p.degraded }

// LastPanic returns the panic that triggered degradation (a
// *WorkerPanicError), or nil.
func (p *ParallelCCSS) LastPanic() error { return p.lastPanic }

// SetFailpoint installs a hook invoked at the start of every span run
// with (level, worker). Fault-injection tests use it to panic inside a
// worker and exercise the degradation path; nil removes it.
func (p *ParallelCCSS) SetFailpoint(fp func(level, wid int)) { p.failpoint = fp }

func (p *ParallelCCSS) stepOne() error {
	m := p.machine
	if m.stopErr != nil {
		return m.stopErr
	}
	t := m.t

	// Keep the dispatcher view's cycle counter current (error reporting
	// reads it); the other worker views sync lazily in runParallel, so an
	// all-inline cycle touches no extra machine structs.
	p.wm[0].cycle = m.cycle

	// Serial preamble: input change detection, skipped entirely when no
	// poke armed it (mirrors the sequential engine's poked gating).
	if p.poked {
		p.poked = false
		for i := range p.inputs {
			in := &p.inputs[i]
			m.stats.InputChecks++
			changed := false
			for w := int32(0); w < in.words; w++ {
				if t[in.off+w] != p.prevIn[in.prevOff+w] {
					changed = true
					p.prevIn[in.prevOff+w] = t[in.off+w]
				}
			}
			if changed {
				for _, q := range in.consumers {
					p.wakePart(q)
				}
				m.stats.Wakes += uint64(len(in.consumers))
			}
		}
	}

	// Walk the barrier-level schedule. Levels with no flagged and no
	// always-on partitions are skipped without touching a single flag —
	// the low-activity fast path the whole layout exists for. The skip
	// test is one compare on a dense counter array (always-on specs carry
	// a permanent bias, so they never read as idle).
	la := p.levelActive
	for li := range la {
		active := la[li]
		if active == 0 {
			continue
		}
		lv := &p.levels[li]
		if lv.serial || p.workers == 1 || p.closed || p.degraded ||
			int(active-lv.aoBias)+lv.alwaysOn < int(lv.minActive) {
			p.runInline(li)
		} else {
			p.runParallel(li)
		}
	}

	// Collect worker errors (first non-nil by worker index; which error
	// surfaces when several partitions fail in one cycle is
	// nondeterministic by construction).
	var err error
	for _, mc := range p.wm {
		if mc.evalErr != nil && err == nil {
			err = mc.evalErr
		}
		mc.evalErr = nil
	}

	// Serial commit: non-elided registers, then pending memory writes.
	for w := range p.wDirty {
		for _, ri := range p.wDirty[w] {
			no, oo := p.regNext[ri], p.regOut[ri]
			changed := false
			for k := int32(0); k < no.words(); k++ {
				if t[oo.off+k] != t[no.off+k] {
					t[oo.off+k] = t[no.off+k]
					changed = true
				}
			}
			m.stats.OutputCompares++
			if changed {
				m.stats.SignalChanges++
				for _, q := range p.regReaderParts[ri] {
					p.wakePart(q)
				}
				m.stats.Wakes += uint64(len(p.regReaderParts[ri]))
			}
		}
		p.wDirty[w] = p.wDirty[w][:0]
	}
	for i := range m.memWrites {
		w := &m.memWrites[i]
		if !w.pendValid {
			continue
		}
		w.pendValid = false
		ms := &m.mems[w.mem]
		if w.pendAddr >= uint64(ms.depth) {
			continue
		}
		base := int32(w.pendAddr) * ms.nw
		changed := false
		for k := int32(0); k < ms.nw; k++ {
			var v uint64
			if int(k) < len(w.pendData) {
				v = w.pendData[k]
			}
			if ms.words[base+k] != v {
				ms.words[base+k] = v
				changed = true
			}
		}
		if changed {
			for _, q := range p.memReaderParts[w.mem] {
				p.wakePart(q)
			}
			m.stats.Wakes += uint64(len(p.memReaderParts[w.mem]))
		}
	}

	m.cycle++
	m.stats.Cycles++
	if err != nil {
		m.stopErr = err
	}
	return err
}

var _ Simulator = (*ParallelCCSS)(nil)
