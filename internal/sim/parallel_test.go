package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"essent/internal/netlist"
	"essent/internal/randckt"
)

func TestParallelCCSSEquivalenceFuzz(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		c := randckt.Generate(seed+2000, randckt.DefaultConfig())
		d, err := netlist.Compile(c)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewCCSS(d, CCSSOptions{Cp: 8})
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewParallelCCSS(d, ParallelOptions{Cp: 8, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		sims := []Simulator{ref, par}
		rng := rand.New(rand.NewSource(seed))
		for cyc := 0; cyc < 100; cyc++ {
			if cyc == 0 || rng.Intn(3) == 0 {
				pokeRandom(rng, sims, d)
			}
			for _, s := range sims {
				if err := s.Step(1); err != nil {
					t.Fatalf("seed %d cyc %d: %v", seed, cyc, err)
				}
			}
			if a, b := archState(ref), archState(par); a != b {
				t.Fatalf("seed %d cyc %d: parallel diverged:\nseq: %s\npar: %s",
					seed, cyc, a, b)
			}
		}
	}
}

func TestParallelCCSSStop(t *testing.T) {
	src := `
circuit S :
  module S :
    input clock : Clock
    output o : UInt<8>
    reg r : UInt<8>, clock
    r <= tail(add(r, UInt<8>(1)), 1)
    o <= r
    stop(clock, eq(r, UInt<8>(20)), 5)
`
	d := compileSrc(t, src)
	p, err := NewParallelCCSS(d, ParallelOptions{Cp: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	err = p.Step(1000)
	if err == nil {
		t.Fatal("expected stop")
	}
	if p.Stats().Cycles != 21 {
		t.Fatalf("stopped at cycle %d, want 21", p.Stats().Cycles)
	}
	// Reset and run again.
	p.Reset()
	if err := p.Step(5); err != nil {
		t.Fatal(err)
	}
}

func TestParallelCCSSSkipsWork(t *testing.T) {
	// The saturating counter from TestCCSSSkipsWork: parallel flags must
	// also sleep once quiescent.
	src := `
circuit Q :
  module Q :
    input clock : Clock
    input en : UInt<1>
    output o : UInt<8>
    reg r : UInt<8>, clock
    node sat = eq(r, UInt<8>(200))
    node inc = tail(add(r, UInt<8>(1)), 1)
    r <= mux(and(en, not(sat)), inc, r)
    o <= r
`
	d := compileSrc(t, src)
	p, err := NewParallelCCSS(d, ParallelOptions{Cp: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	en, _ := d.SignalByName("en")
	p.Poke(en, 1)
	if err := p.Step(1000); err != nil {
		t.Fatal(err)
	}
	r, _ := d.SignalByName("r")
	if p.Peek(r) != 200 {
		t.Fatalf("r = %d", p.Peek(r))
	}
	st := p.Stats()
	if st.PartEvals*3 > st.PartChecks {
		t.Fatalf("parallel engine did not sleep: evals=%d checks=%d",
			st.PartEvals, st.PartChecks)
	}
}

func TestParallelCCSSWorkerCounts(t *testing.T) {
	c := randckt.Generate(77, randckt.DefaultConfig())
	d, err := netlist.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	var states []string
	for _, workers := range []int{1, 2, 8, 12} {
		p, err := NewParallelCCSS(d, ParallelOptions{Cp: 8, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for cyc := 0; cyc < 50; cyc++ {
			if cyc%4 == 0 {
				pokeRandom(rng, []Simulator{p}, d)
			}
			if err := p.Step(1); err != nil {
				t.Fatal(err)
			}
		}
		states = append(states, archState(p))
	}
	for i := 1; i < len(states); i++ {
		if states[i] != states[0] {
			t.Fatalf("worker count changed results")
		}
	}
	_ = fmt.Sprint()
}

// TestParallelWorkersAboveDefaultCap pins the ParallelOptions contract:
// an explicit Workers value beyond the Workers=0 default cap must be
// honored exactly, not clamped to defaultWorkerCap.
func TestParallelWorkersAboveDefaultCap(t *testing.T) {
	c := randckt.Generate(78, randckt.DefaultConfig())
	d, err := netlist.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	want := defaultWorkerCap + 4
	p, err := NewParallelCCSS(d, ParallelOptions{Cp: 8, Workers: want})
	if err != nil {
		t.Fatal(err)
	}
	if p.workers != want || len(p.wm) != want {
		t.Fatalf("Workers=%d clamped: workers=%d views=%d", want, p.workers, len(p.wm))
	}
	// The default path still applies the cap.
	p0, err := NewParallelCCSS(d, ParallelOptions{Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p0.workers > defaultWorkerCap {
		t.Fatalf("default worker count %d exceeds cap %d", p0.workers, defaultWorkerCap)
	}
	// Oversubscribed workers must still agree with the sequential engine.
	ref, err := NewCCSS(d, CCSSOptions{Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	sims := []Simulator{ref, p}
	rng := rand.New(rand.NewSource(78))
	for cyc := 0; cyc < 60; cyc++ {
		if cyc%3 == 0 {
			pokeRandom(rng, sims, d)
		}
		for _, s := range sims {
			if err := s.Step(1); err != nil {
				t.Fatal(err)
			}
		}
		if a, b := archState(ref), archState(p); a != b {
			t.Fatalf("cyc %d: oversubscribed parallel diverged:\nref: %s\ngot: %s", cyc, a, b)
		}
	}
}
