package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"essent/internal/netlist"
	"essent/internal/randckt"
)

func TestParallelCCSSEquivalenceFuzz(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		c := randckt.Generate(seed+2000, randckt.DefaultConfig())
		d, err := netlist.Compile(c)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewCCSS(d, CCSSOptions{Cp: 8})
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewParallelCCSS(d, ParallelOptions{Cp: 8, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		sims := []Simulator{ref, par}
		rng := rand.New(rand.NewSource(seed))
		for cyc := 0; cyc < 100; cyc++ {
			if cyc == 0 || rng.Intn(3) == 0 {
				pokeRandom(rng, sims, d)
			}
			for _, s := range sims {
				if err := s.Step(1); err != nil {
					t.Fatalf("seed %d cyc %d: %v", seed, cyc, err)
				}
			}
			if a, b := archState(ref), archState(par); a != b {
				t.Fatalf("seed %d cyc %d: parallel diverged:\nseq: %s\npar: %s",
					seed, cyc, a, b)
			}
		}
	}
}

func TestParallelCCSSStop(t *testing.T) {
	src := `
circuit S :
  module S :
    input clock : Clock
    output o : UInt<8>
    reg r : UInt<8>, clock
    r <= tail(add(r, UInt<8>(1)), 1)
    o <= r
    stop(clock, eq(r, UInt<8>(20)), 5)
`
	d := compileSrc(t, src)
	p, err := NewParallelCCSS(d, ParallelOptions{Cp: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	err = p.Step(1000)
	if err == nil {
		t.Fatal("expected stop")
	}
	if p.Stats().Cycles != 21 {
		t.Fatalf("stopped at cycle %d, want 21", p.Stats().Cycles)
	}
	// Reset and run again.
	p.Reset()
	if err := p.Step(5); err != nil {
		t.Fatal(err)
	}
}

func TestParallelCCSSSkipsWork(t *testing.T) {
	// The saturating counter from TestCCSSSkipsWork: once the design is
	// quiescent, the level-activity counters must skip every level
	// outright — not just the evaluations, the flag scans too.
	src := `
circuit Q :
  module Q :
    input clock : Clock
    input en : UInt<1>
    output o : UInt<8>
    reg r : UInt<8>, clock
    node sat = eq(r, UInt<8>(200))
    node inc = tail(add(r, UInt<8>(1)), 1)
    r <= mux(and(en, not(sat)), inc, r)
    o <= r
`
	d := compileSrc(t, src)
	p, err := NewParallelCCSS(d, ParallelOptions{Cp: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	en, _ := d.SignalByName("en")
	p.Poke(en, 1)
	if err := p.Step(1000); err != nil {
		t.Fatal(err)
	}
	r, _ := d.SignalByName("r")
	if p.Peek(r) != 200 {
		t.Fatalf("r = %d", p.Peek(r))
	}
	before := *p.Stats()
	if err := p.Step(500); err != nil {
		t.Fatal(err)
	}
	after := *p.Stats()
	if after.PartChecks != before.PartChecks || after.PartEvals != before.PartEvals {
		t.Fatalf("quiescent design still scanned: checks %d→%d evals %d→%d",
			before.PartChecks, after.PartChecks, before.PartEvals, after.PartEvals)
	}
	if after.Cycles != before.Cycles+500 {
		t.Fatalf("cycles %d→%d", before.Cycles, after.Cycles)
	}
}

func TestParallelCCSSWorkerCounts(t *testing.T) {
	c := randckt.Generate(77, randckt.DefaultConfig())
	d, err := netlist.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	var states []string
	for _, workers := range []int{1, 2, 8, 12} {
		p, err := NewParallelCCSS(d, ParallelOptions{Cp: 8, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		for cyc := 0; cyc < 50; cyc++ {
			if cyc%4 == 0 {
				pokeRandom(rng, []Simulator{p}, d)
			}
			if err := p.Step(1); err != nil {
				t.Fatal(err)
			}
		}
		states = append(states, archState(p))
	}
	for i := 1; i < len(states); i++ {
		if states[i] != states[0] {
			t.Fatalf("worker count changed results")
		}
	}
	_ = fmt.Sprint()
}

// TestParallelWorkersAboveDefaultCap pins the ParallelOptions contract:
// an explicit Workers value beyond the Workers=0 default cap must be
// honored exactly, not clamped to defaultWorkerCap.
func TestParallelWorkersAboveDefaultCap(t *testing.T) {
	c := randckt.Generate(78, randckt.DefaultConfig())
	d, err := netlist.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	want := defaultWorkerCap + 4
	p, err := NewParallelCCSS(d, ParallelOptions{Cp: 8, Workers: want})
	if err != nil {
		t.Fatal(err)
	}
	if p.workers != want || len(p.wm) != want {
		t.Fatalf("Workers=%d clamped: workers=%d views=%d", want, p.workers, len(p.wm))
	}
	// The default path still applies the cap.
	p0, err := NewParallelCCSS(d, ParallelOptions{Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p0.workers > defaultWorkerCap {
		t.Fatalf("default worker count %d exceeds cap %d", p0.workers, defaultWorkerCap)
	}
	// Oversubscribed workers must still agree with the sequential engine.
	ref, err := NewCCSS(d, CCSSOptions{Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	sims := []Simulator{ref, p}
	rng := rand.New(rand.NewSource(78))
	for cyc := 0; cyc < 60; cyc++ {
		if cyc%3 == 0 {
			pokeRandom(rng, sims, d)
		}
		for _, s := range sims {
			if err := s.Step(1); err != nil {
				t.Fatal(err)
			}
		}
		if a, b := archState(ref), archState(p); a != b {
			t.Fatalf("cyc %d: oversubscribed parallel diverged:\nref: %s\ngot: %s", cyc, a, b)
		}
	}
}

// TestParallelPoolStressRace hammers the persistent pool under the race
// detector: SerialCutoff 1 forces every active multi-partition level
// through the barrier, with worker counts both far above GOMAXPROCS and
// at the degenerate single-worker setting.
func TestParallelPoolStressRace(t *testing.T) {
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)*2 + 3} {
		for seed := int64(0); seed < 3; seed++ {
			c := randckt.Generate(seed+4000, randckt.DefaultConfig())
			d, err := netlist.Compile(c)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewCCSS(d, CCSSOptions{Cp: 8})
			if err != nil {
				t.Fatal(err)
			}
			par, err := NewParallelCCSS(d, ParallelOptions{
				Cp: 8, Workers: workers, SerialCutoff: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer par.Close()
			sims := []Simulator{ref, par}
			rng := rand.New(rand.NewSource(seed))
			for cyc := 0; cyc < 120; cyc++ {
				if cyc == 0 || rng.Intn(3) == 0 {
					pokeRandom(rng, sims, d)
				}
				for _, s := range sims {
					if err := s.Step(1); err != nil {
						t.Fatalf("workers %d seed %d cyc %d: %v", workers, seed, cyc, err)
					}
				}
				if a, b := archState(ref), archState(par); a != b {
					t.Fatalf("workers %d seed %d cyc %d: diverged:\nseq: %s\npar: %s",
						workers, seed, cyc, a, b)
				}
			}
		}
	}
}

// TestParallelCloseKeepsStepping: Close retires the pool but the engine
// must keep simulating correctly on the inline path.
func TestParallelCloseKeepsStepping(t *testing.T) {
	c := randckt.Generate(4100, randckt.DefaultConfig())
	d, err := netlist.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewCCSS(d, CCSSOptions{Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallelCCSS(d, ParallelOptions{Cp: 8, Workers: 4, SerialCutoff: 1})
	if err != nil {
		t.Fatal(err)
	}
	sims := []Simulator{ref, par}
	rng := rand.New(rand.NewSource(41))
	for cyc := 0; cyc < 80; cyc++ {
		if cyc == 40 {
			par.Close()
			par.Close() // idempotent
		}
		if cyc%3 == 0 {
			pokeRandom(rng, sims, d)
		}
		for _, s := range sims {
			if err := s.Step(1); err != nil {
				t.Fatal(err)
			}
		}
		if a, b := archState(ref), archState(par); a != b {
			t.Fatalf("cyc %d: diverged after Close:\nseq: %s\npar: %s", cyc, a, b)
		}
	}
}

// TestParallelPrintfDefaultMatchesSequential pins the satellite fix: the
// parallel engine's default printf sink must behave like the sequential
// engine's (discard), and SetOutput must route worker printfs to the new
// sink — including printfs emitted from pool workers.
func TestParallelPrintfDefaultMatchesSequential(t *testing.T) {
	src := `
circuit P :
  module P :
    input clock : Clock
    input en : UInt<1>
    output o : UInt<1>
    o <= en
    printf(clock, en, "tick\n")
`
	d := compileSrc(t, src)
	par, err := NewParallelCCSS(d, ParallelOptions{Cp: 8, Workers: 2, SerialCutoff: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	par.Poke(sigID(t, par, "en"), 1)
	// Default sink: firing printfs must not panic and must not write.
	if err := par.Step(3); err != nil {
		t.Fatal(err)
	}
	var buf countingWriter
	par.SetOutput(&buf)
	if err := par.Step(10); err != nil {
		t.Fatal(err)
	}
	if buf.n != 10*5 { // "tick\n" = 5 bytes × 10 cycles
		t.Fatalf("printf after SetOutput wrote %d bytes, want 50", buf.n)
	}
}

// TestParallelResetClearsStats pins the satellite fix: a reused engine
// must not report counters from the previous run; the compile-time
// fusion counter survives.
func TestParallelResetClearsStats(t *testing.T) {
	c := randckt.Generate(4200, randckt.DefaultConfig())
	d, err := netlist.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallelCCSS(d, ParallelOptions{Cp: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	rng := rand.New(rand.NewSource(42))
	pokeRandom(rng, []Simulator{par}, d)
	if err := par.Step(50); err != nil {
		t.Fatal(err)
	}
	before := *par.Stats()
	if before.Cycles == 0 || before.PartEvals == 0 {
		t.Fatal("no work recorded before reset")
	}
	par.Reset()
	got := *par.Stats()
	want := Stats{FusedPairs: before.FusedPairs}
	if got != want {
		t.Fatalf("Reset left stale counters: %+v", got)
	}
	if err := par.Step(5); err != nil {
		t.Fatal(err)
	}
	if par.Stats().Cycles != 5 {
		t.Fatalf("cycles after reset = %d, want 5", par.Stats().Cycles)
	}
}

// TestParallelStatsDeterministic: merged Stats must be identical across
// worker counts, with the pool forced on (SerialCutoff 1) and at the
// default cutoff.
func TestParallelStatsDeterministic(t *testing.T) {
	c := randckt.Generate(4300, randckt.DefaultConfig())
	d, err := netlist.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, cutoff := range []int64{0, 1} {
		var ref *Stats
		var refState string
		for _, workers := range []int{1, 2, 4, 8} {
			par, err := NewParallelCCSS(d, ParallelOptions{
				Cp: 8, Workers: workers, SerialCutoff: cutoff})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(43))
			for cyc := 0; cyc < 60; cyc++ {
				if cyc%4 == 0 {
					pokeRandom(rng, []Simulator{par}, d)
				}
				if err := par.Step(1); err != nil {
					t.Fatal(err)
				}
			}
			st := *par.Stats()
			state := archState(par)
			par.Close()
			if ref == nil {
				ref, refState = &st, state
				continue
			}
			if st != *ref {
				t.Fatalf("cutoff %d workers %d: stats diverged:\nwant %+v\ngot  %+v",
					cutoff, workers, *ref, st)
			}
			if state != refState {
				t.Fatalf("cutoff %d workers %d: state diverged", cutoff, workers)
			}
		}
	}
}
