package sim

import (
	"sort"

	"essent/internal/bits"
	"essent/internal/netlist"
)

// Pull-direction triggering (§III-A ablation): instead of producers
// waking consumers on change (push), every partition checks each cycle
// whether any of its input signals changed since it last evaluated. The
// paper predicts this loses — most partitions are inactive most of the
// time, so the per-cycle input comparisons dominate — and the ablation
// quantifies it. Memory content changes are not visible through input
// signals, so memory writes retain push wakes.

// pullInput is one compared input of a partition.
type pullInput struct {
	off     int32
	words   int32
	snapOff int32
}

// buildPull prepares per-partition input lists and the snapshot buffer.
func (c *CCSS) buildPull() {
	d := c.d
	m := c.machine
	partOf := make([]int32, len(d.Signals))
	for i := range partOf {
		partOf[i] = -1
	}
	for pi := range c.plan.Parts {
		for _, n := range c.plan.Parts[pi].Members {
			if n < len(d.Signals) {
				partOf[n] = int32(pi)
			}
		}
	}
	c.pullIns = make([][]pullInput, len(c.parts))
	snapOff := int32(0)
	for pi := range c.plan.Parts {
		seen := map[netlist.SignalID]bool{}
		var ins []netlist.SignalID
		addArg := func(a netlist.Arg) {
			if a.IsConst() || seen[a.Sig] {
				return
			}
			s := &d.Signals[a.Sig]
			// External producers and every register output (including
			// the partition's own: in-place updates must re-trigger
			// feedback next cycle).
			if partOf[a.Sig] != int32(pi) || s.Kind == netlist.KRegOut {
				seen[a.Sig] = true
				ins = append(ins, a.Sig)
			}
		}
		for _, n := range c.plan.Parts[pi].Members {
			if n >= len(d.Signals) {
				switch c.dg.Kind[n] {
				case netlist.NodeMemWrite:
					w := &d.MemWrites[c.dg.Index[n]]
					addArg(w.Addr)
					addArg(w.En)
					addArg(w.Data)
					addArg(w.Mask)
				case netlist.NodeDisplay:
					disp := &d.Displays[c.dg.Index[n]]
					addArg(disp.En)
					for _, a := range disp.Args {
						addArg(a)
					}
				case netlist.NodeCheck:
					ck := &d.Checks[c.dg.Index[n]]
					addArg(ck.En)
					addArg(ck.Pred)
				}
				continue
			}
			s := &d.Signals[n]
			switch s.Kind {
			case netlist.KComb:
				for _, a := range s.Op.Args {
					addArg(a)
				}
			case netlist.KMemRead:
				r := &d.MemReads[s.MemRead]
				addArg(r.Addr)
				addArg(r.En)
			}
		}
		sort.Slice(ins, func(a, b int) bool { return ins[a] < ins[b] })
		list := make([]pullInput, 0, len(ins))
		for _, sig := range ins {
			words := int32(bits.Words(d.Signals[sig].Width))
			list = append(list, pullInput{
				off: m.off[sig], words: words, snapOff: snapOff,
			})
			snapOff += words
		}
		c.pullIns[pi] = list
	}
	c.pullSnap = make([]uint64, snapOff)
	// Invalidate snapshots so every partition runs on the first cycle.
	for i := range c.pullSnap {
		c.pullSnap[i] = ^uint64(0)
	}
}

// stepOnePull is the pull-direction cycle.
func (c *CCSS) stepOnePull() error {
	if c.stopErr != nil {
		return c.stopErr
	}
	m := c.machine
	t := m.t

	for p := range c.parts {
		part := &c.parts[p]
		m.stats.PartChecks++
		// Compare every input against its snapshot (the pull overhead).
		changed := false
		for ii := range c.pullIns[p] {
			in := &c.pullIns[p][ii]
			m.stats.InputChecks++
			for w := int32(0); w < in.words; w++ {
				if t[in.off+w] != c.pullSnap[in.snapOff+w] {
					changed = true
					break
				}
			}
			if changed {
				break
			}
		}
		if !changed && !part.alwaysOn && !c.flags[p] {
			continue
		}
		c.flags[p] = false
		m.stats.PartEvals++
		// Snapshot inputs (pre-evaluation, so in-place register feedback
		// re-triggers next cycle).
		for ii := range c.pullIns[p] {
			in := &c.pullIns[p][ii]
			copy(c.pullSnap[in.snapOff:in.snapOff+in.words], t[in.off:in.off+in.words])
		}
		m.runRange(part.schedStart, part.schedEnd)
		c.dirtyRegs = append(c.dirtyRegs, part.regs...)
	}

	err := m.evalErr
	m.evalErr = nil

	// Commit non-elided registers (no wakes needed: pull comparisons see
	// the new values next cycle).
	for _, ri := range c.dirtyRegs {
		no, oo := c.regNext[ri], c.regOut[ri]
		for w := int32(0); w < no.words(); w++ {
			t[oo.off+w] = t[no.off+w]
		}
	}
	c.dirtyRegs = c.dirtyRegs[:0]

	// Memory writes: content changes are invisible to input comparisons,
	// so read-port partitions keep push wakes (via c.flags).
	for i := range m.memWrites {
		w := &m.memWrites[i]
		if !w.pendValid {
			continue
		}
		w.pendValid = false
		ms := &m.mems[w.mem]
		if w.pendAddr >= uint64(ms.depth) {
			continue
		}
		base := int32(w.pendAddr) * ms.nw
		memChanged := false
		for k := int32(0); k < ms.nw; k++ {
			var v uint64
			if int(k) < len(w.pendData) {
				v = w.pendData[k]
			}
			if ms.words[base+k] != v {
				ms.words[base+k] = v
				memChanged = true
			}
		}
		if memChanged {
			for _, q := range c.memReaderParts[w.mem] {
				c.flags[q] = true
			}
		}
	}

	m.cycle++
	m.stats.Cycles++
	if err != nil {
		m.stopErr = err
	}
	return err
}
