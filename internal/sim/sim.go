// Package sim implements the simulation engines: the shared compiled-
// schedule machinery (value table, instruction stream, state commit) and
// the four engines of the evaluation — EventDriven, FullCycle (baseline),
// FullCycleOpt (optimized full-cycle, the Verilator stand-in), and CCSS
// (the paper's conditional/coarsened/singular/static engine, ESSENT).
package sim

import (
	"errors"
	"fmt"
	"io"

	"essent/internal/netlist"
)

// Engine names a simulation strategy.
type Engine int

// The four engines of the evaluation (§V).
const (
	// EngineEventDriven dynamically schedules individual signal updates
	// through a levelized event queue (the commercial-simulator stand-in).
	EngineEventDriven Engine = iota
	// EngineFullCycle evaluates the whole design every cycle with no
	// optimizations (the paper's Baseline).
	EngineFullCycle
	// EngineFullCycleOpt is full-cycle plus netlist optimizations and
	// register update elision (the Verilator stand-in).
	EngineFullCycleOpt
	// EngineCCSS is the paper's contribution: acyclic-partitioned
	// conditional execution on a static singular schedule (ESSENT).
	EngineCCSS
	// EngineCCSSParallel evaluates independent active partitions
	// concurrently, level by level (a follow-on extension; needs a
	// multi-core host to pay off).
	EngineCCSSParallel
	// EngineCCSSVec groups structurally identical partitions (replicated
	// module instances) into equivalence classes and evaluates each
	// class once per cycle across all instances through the lane-major
	// row kernels, with a per-instance activity mask.
	EngineCCSSVec
)

func (e Engine) String() string {
	switch e {
	case EngineEventDriven:
		return "EventDriven"
	case EngineFullCycle:
		return "FullCycle"
	case EngineFullCycleOpt:
		return "FullCycleOpt"
	case EngineCCSS:
		return "CCSS"
	case EngineCCSSParallel:
		return "CCSS-parallel"
	case EngineCCSSVec:
		return "CCSS-vec"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Capabilities describes an engine for the Table IV attribute matrix.
type Capabilities struct {
	Name                 string
	ConditionalExecution bool
	CoarsenedSchedule    bool
	StaticSchedule       bool
	SingularExecution    bool
	CoarseningMethod     string
	CoarseningAutomated  bool
	TriggeringAutomated  bool
}

// EngineCapabilities returns the Table IV row for an engine.
func EngineCapabilities(e Engine) Capabilities {
	switch e {
	case EngineEventDriven:
		return Capabilities{Name: "Event-driven", ConditionalExecution: true,
			SingularExecution: true, CoarseningMethod: "N/A"}
	case EngineFullCycle, EngineFullCycleOpt:
		return Capabilities{Name: "Full-cycle", StaticSchedule: true,
			SingularExecution: true, CoarseningMethod: "N/A"}
	case EngineCCSS, EngineCCSSParallel, EngineCCSSVec:
		return Capabilities{Name: "ESSENT (CCSS)", ConditionalExecution: true,
			CoarsenedSchedule: true, StaticSchedule: true, SingularExecution: true,
			CoarseningMethod: "acyclic partitioner", CoarseningAutomated: true,
			TriggeringAutomated: true}
	default:
		return Capabilities{Name: e.String()}
	}
}

// ErrStopped is returned by Step when the design executes a stop().
var ErrStopped = errors.New("sim: stopped")

// StopError carries the stop code (0 = success by convention).
type StopError struct {
	Code  int
	Cycle uint64
}

func (e *StopError) Error() string {
	return fmt.Sprintf("sim: stop(%d) at cycle %d", e.Code, e.Cycle)
}

// Unwrap lets errors.Is(err, ErrStopped) match.
func (e *StopError) Unwrap() error { return ErrStopped }

// AssertError reports a failed assertion.
type AssertError struct {
	Msg   string
	Cycle uint64
}

func (e *AssertError) Error() string {
	return fmt.Sprintf("sim: assertion failed at cycle %d: %s", e.Cycle, e.Msg)
}

// Stats counts the work a simulator performed. The counters implement the
// Fig. 7 overhead decomposition: OpsEvaluated is base simulation work,
// PartChecks is static overhead (paid every cycle regardless of activity),
// and OutputCompares/Wakes are dynamic overhead (paid only when active).
type Stats struct {
	Cycles uint64
	// OpsEvaluated counts combinational instruction evaluations.
	OpsEvaluated uint64
	// SignalChanges counts signals whose value changed (activity tracing).
	SignalChanges uint64
	// PartChecks counts partition activity-flag tests (static overhead).
	PartChecks uint64
	// InputChecks counts external-input change tests (static overhead).
	InputChecks uint64
	// PartEvals counts partitions actually evaluated.
	PartEvals uint64
	// OutputCompares counts partition output change tests (dynamic).
	OutputCompares uint64
	// Wakes counts consumer activations triggered (dynamic).
	Wakes uint64
	// Events counts event-queue pushes (event-driven engine).
	Events uint64
	// FusedPairs counts producer→consumer pairs merged into
	// superinstructions at compile time (schedule engines; set at
	// construction, not per cycle).
	FusedPairs uint64
	// WorkerPanics counts pool-worker panics recovered by the parallel
	// engines; nonzero means the run degraded to sequential evaluation
	// (robustness layer, not paper overhead accounting).
	WorkerPanics uint64
}

// Reset zeroes the run counters, preserving FusedPairs (a compile-time
// property of the schedule, not accumulated run work).
func (st *Stats) Reset() {
	fused := st.FusedPairs
	*st = Stats{FusedPairs: fused}
}

// Simulator is the interface all engines implement.
type Simulator interface {
	// Design returns the compiled design.
	Design() *netlist.Design
	// Reset restores registers to their initial values, zeroes memories,
	// and clears stop state.
	Reset()
	// Poke sets an input signal (wide values via PokeWide).
	Poke(id netlist.SignalID, v uint64)
	// PokeWide sets an input from limb words.
	PokeWide(id netlist.SignalID, words []uint64)
	// Peek reads any signal's low 64 bits as last computed.
	Peek(id netlist.SignalID) uint64
	// PeekWide copies a signal's words into dst (allocating if nil).
	PeekWide(id netlist.SignalID, dst []uint64) []uint64
	// PeekMem reads a memory word (for state comparison and golden checks).
	PeekMem(mem, addr int) uint64
	// PokeMem writes a memory word (program/data loading). Engines with
	// activity tracking invalidate dependent read ports.
	PokeMem(mem, addr int, v uint64)
	// Step simulates n clock cycles. It returns a *StopError when the
	// design executes stop(), an *AssertError on assertion failure.
	Step(n int) error
	// Stats returns accumulated work counters.
	Stats() *Stats
	// SetOutput directs printf output (default io.Discard).
	SetOutput(w io.Writer)
}
