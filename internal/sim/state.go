package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"essent/internal/bits"
	"essent/internal/netlist"
	"essent/pkg/simrt"
)

// State is an engine-neutral snapshot of complete simulation state at a
// cycle boundary: input port values, architectural register contents,
// memory contents, the cycle count, and the accumulated Stats. Because
// every engine's combinational values are a pure function of this state
// (recomputed on the first step after a restore), a State captured under
// one engine resumes bit-exactly under any other engine compiled from
// the same design — the checkpoint subsystem (internal/ckpt) serializes
// exactly this structure.
//
// A State is only meaningful at a cycle boundary (between Step calls):
// pending memory writes have been applied and registers committed, so no
// in-flight sink state needs to be carried.
type State struct {
	// Design is the design name (informational; Fingerprint is the
	// authoritative compatibility check).
	Design string
	// Fingerprint identifies the compiled design's state layout (see
	// DesignFingerprint). Restore refuses mismatched fingerprints.
	Fingerprint uint64
	// Cycle is the cycle count at capture.
	Cycle uint64
	// Stats carries the accumulated work counters so a resumed run
	// continues its accounting instead of restarting from zero.
	Stats Stats
	// Inputs holds one word slice per design input (Design.Inputs order).
	Inputs [][]uint64
	// Regs holds one word slice per register (Design.Regs order, the
	// committed Out value).
	Regs [][]uint64
	// Mems holds the full word contents of each memory (Design.Mems
	// order, Words-per-entry × Depth, scalar layout).
	Mems [][]uint64
}

// DesignFingerprint hashes the state-relevant shape of a design: signal
// widths and kinds, register and memory geometry, and port lists. Two
// designs with equal fingerprints have interchangeable States. The
// optimized and unoptimized forms of the same circuit hash differently —
// they carry different state-element sets, so their snapshots are not
// interchangeable and the mismatch must be detected.
func DesignFingerprint(d *netlist.Design) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(d.Name))
	wu(uint64(len(d.Signals)))
	for i := range d.Signals {
		s := &d.Signals[i]
		v := uint64(s.Width)<<3 | uint64(s.Kind)
		if s.Signed {
			v |= 1 << 62
		}
		wu(v)
	}
	wu(uint64(len(d.Inputs)))
	for _, in := range d.Inputs {
		wu(uint64(in))
	}
	wu(uint64(len(d.Regs)))
	for i := range d.Regs {
		wu(uint64(d.Regs[i].Out)<<32 | uint64(d.Regs[i].Next))
	}
	wu(uint64(len(d.Mems)))
	for i := range d.Mems {
		wu(uint64(d.Mems[i].Depth)<<16 | uint64(d.Mems[i].Width))
	}
	return h.Sum64()
}

// StateCapturer is implemented by engines that can snapshot their state.
type StateCapturer interface {
	CaptureState() *State
}

// StateRestorer is implemented by engines that can resume from a State.
type StateRestorer interface {
	RestoreState(*State) error
}

// Capture snapshots a simulator's engine-neutral state. It returns an
// error for engines without snapshot support.
func Capture(s Simulator) (*State, error) {
	c, ok := s.(StateCapturer)
	if !ok {
		return nil, fmt.Errorf("sim: engine %T does not support state capture", s)
	}
	return c.CaptureState(), nil
}

// Restore resumes a simulator from a captured State. The design
// fingerprint must match; the engine may differ from the one that
// captured it.
func Restore(s Simulator, st *State) error {
	r, ok := s.(StateRestorer)
	if !ok {
		return fmt.Errorf("sim: engine %T does not support state restore", s)
	}
	return r.RestoreState(st)
}

// CaptureState snapshots the machine's architectural state. Promoted to
// every machine-based engine; ParallelCCSS overrides it to merge worker
// counters first.
func (m *machine) CaptureState() *State {
	d := m.d
	st := &State{
		Design:      d.Name,
		Fingerprint: DesignFingerprint(d),
		Cycle:       m.cycle,
		Stats:       m.stats,
	}
	st.Inputs = make([][]uint64, len(d.Inputs))
	for i, in := range d.Inputs {
		src := m.view(m.off[in], int32(d.Signals[in].Width))
		st.Inputs[i] = append([]uint64(nil), src...)
	}
	st.Regs = make([][]uint64, len(d.Regs))
	for ri := range d.Regs {
		out := d.Regs[ri].Out
		src := m.view(m.off[out], int32(d.Signals[out].Width))
		st.Regs[ri] = append([]uint64(nil), src...)
	}
	st.Mems = make([][]uint64, len(m.mems))
	for mi := range m.mems {
		st.Mems[mi] = append([]uint64(nil), m.mems[mi].words...)
	}
	return st
}

// restoreInto writes a State's architectural values into the machine and
// clears transient run state (pending writes, stop/eval errors). The
// caller (the owning engine) re-arms its activity tracking afterwards so
// every combinational signal is recomputed on the next step.
func (m *machine) restoreInto(st *State) error {
	d := m.d
	if want := DesignFingerprint(d); st.Fingerprint != want {
		return fmt.Errorf("sim: state fingerprint %#x does not match design %q (%#x)",
			st.Fingerprint, d.Name, want)
	}
	if len(st.Inputs) != len(d.Inputs) || len(st.Regs) != len(d.Regs) ||
		len(st.Mems) != len(m.mems) {
		return fmt.Errorf("sim: state shape mismatch for design %q", d.Name)
	}
	for i, in := range d.Inputs {
		dst := m.view(m.off[in], int32(d.Signals[in].Width))
		if len(st.Inputs[i]) != len(dst) {
			return fmt.Errorf("sim: input %d word count mismatch", i)
		}
		copy(dst, st.Inputs[i])
	}
	for ri := range d.Regs {
		out := d.Regs[ri].Out
		dst := m.view(m.off[out], int32(d.Signals[out].Width))
		if len(st.Regs[ri]) != len(dst) {
			return fmt.Errorf("sim: register %d word count mismatch", ri)
		}
		copy(dst, st.Regs[ri])
		bits.MaskInto(dst, d.Signals[out].Width)
	}
	for mi := range m.mems {
		if len(st.Mems[mi]) != len(m.mems[mi].words) {
			return fmt.Errorf("sim: memory %d word count mismatch", mi)
		}
		copy(m.mems[mi].words, st.Mems[mi])
	}
	for i := range m.memWrites {
		m.memWrites[i].pendValid = false
	}
	m.cycle = st.Cycle
	fused := m.stats.FusedPairs
	m.stats = st.Stats
	m.stats.FusedPairs = fused
	m.stopErr = nil
	m.evalErr = nil
	return nil
}

// RestoreState resumes a full-cycle machine from a State. The next step
// re-evaluates the entire schedule, so no re-arming is needed beyond the
// architectural writes. (FullCycle engines promote this method; engines
// with activity tracking override it.)
func (m *machine) RestoreState(st *State) error {
	return m.restoreInto(st)
}

// RestoreState resumes a CCSS engine from a State: architectural values
// plus a full wake so every partition (and the input scan) re-evaluates
// on the next step. Evaluating a partition whose inputs did not change
// reproduces its outputs exactly, so the resumed trajectory is bit-exact
// with an uninterrupted run even though the first resumed cycle does
// more evaluation work.
func (c *CCSS) RestoreState(st *State) error {
	if err := c.machine.restoreInto(st); err != nil {
		return err
	}
	c.dirtyRegs = c.dirtyRegs[:0]
	c.wakeAll()
	return nil
}

// RestoreState resumes the parallel engine: CCSS restore semantics plus
// per-worker counter and buffer resets (snapshot Stats live on the
// dispatcher view so the merged counters continue from the snapshot).
func (p *ParallelCCSS) RestoreState(st *State) error {
	if err := p.machine.restoreInto(st); err != nil {
		return err
	}
	for w := range p.wm {
		p.wm[w].stats = Stats{}
		p.wm[w].evalErr = nil
		p.wm[w].cycle = p.machine.cycle
		p.wDirty[w] = p.wDirty[w][:0]
		p.wakeBuf[w] = p.wakeBuf[w][:0]
		p.wPanic[w] = nil
	}
	p.dirtyRegs = p.dirtyRegs[:0]
	p.wakeAllPar()
	return nil
}

// CaptureState on the parallel engine snapshots the merged counters (the
// per-worker split is an implementation detail no resume should see).
func (p *ParallelCCSS) CaptureState() *State {
	st := p.machine.CaptureState()
	st.Stats = *p.Stats()
	return st
}

// CaptureLaneState snapshots one batch lane as an engine-neutral State
// (scalar layout), interchangeable with the scalar engines' snapshots:
// a lane checkpointed under BatchCCSS resumes under CCSS and vice
// versa. Stats are the lane's own counters, and Cycle is the lane's own
// cycle count — not the shared lock-step batch counter, which drifts
// from a lane's logical position once a snapshot is restored into a
// younger engine.
func (b *BatchCCSS) CaptureLaneState(l int) *State {
	m := b.base.machine
	d := m.d
	L := b.L
	ls := b.LaneStats(l)
	st := &State{
		Design:      d.Name,
		Fingerprint: DesignFingerprint(d),
		Cycle:       ls.Cycles,
		Stats:       ls,
	}
	gather := func(id netlist.SignalID) []uint64 {
		off := int(m.off[id])
		nw := bits.Words(d.Signals[id].Width)
		out := make([]uint64, nw)
		for k := 0; k < nw; k++ {
			out[k] = b.bt[(off+k)*L+l]
		}
		return out
	}
	st.Inputs = make([][]uint64, len(d.Inputs))
	for i, in := range d.Inputs {
		st.Inputs[i] = gather(in)
	}
	st.Regs = make([][]uint64, len(d.Regs))
	for ri := range d.Regs {
		st.Regs[ri] = gather(d.Regs[ri].Out)
	}
	st.Mems = make([][]uint64, len(b.mems))
	for mi := range b.mems {
		ms := &b.mems[mi]
		n := int(ms.depth) * int(ms.nw)
		words := make([]uint64, n)
		for i := 0; i < n; i++ {
			words[i] = ms.words[i*L+l]
		}
		st.Mems[mi] = words
	}
	return st
}

// RestoreLaneState loads an engine-neutral State into one batch lane:
// the lane's values, registers, and memory image are overwritten, its
// per-lane counters continue from the snapshot, any frozen state is
// cleared (the lane rejoins the live set), and the lane is flagged in
// every partition so its combinational values recompute on the next
// step. The lock-step batch cycle counter is shared across lanes and
// is not changed; the lane's own Stats.Cycles carries its cycle count.
func (b *BatchCCSS) RestoreLaneState(l int, st *State) error {
	m := b.base.machine
	d := m.d
	L := b.L
	if want := DesignFingerprint(d); st.Fingerprint != want {
		return fmt.Errorf("sim: state fingerprint %#x does not match design %q (%#x)",
			st.Fingerprint, d.Name, want)
	}
	if len(st.Inputs) != len(d.Inputs) || len(st.Regs) != len(d.Regs) ||
		len(st.Mems) != len(b.mems) {
		return fmt.Errorf("sim: state shape mismatch for design %q", d.Name)
	}
	scatter := func(id netlist.SignalID, src []uint64) error {
		off := int(m.off[id])
		nw := bits.Words(d.Signals[id].Width)
		if len(src) != nw {
			return fmt.Errorf("sim: signal %d word count mismatch", id)
		}
		for k := 0; k < nw; k++ {
			b.bt[(off+k)*L+l] = src[k]
		}
		return nil
	}
	for i, in := range d.Inputs {
		if err := scatter(in, st.Inputs[i]); err != nil {
			return err
		}
	}
	for ri := range d.Regs {
		if err := scatter(d.Regs[ri].Out, st.Regs[ri]); err != nil {
			return err
		}
	}
	for mi := range b.mems {
		ms := &b.mems[mi]
		n := int(ms.depth) * int(ms.nw)
		if len(st.Mems[mi]) != n {
			return fmt.Errorf("sim: memory %d word count mismatch", mi)
		}
		for i := 0; i < n; i++ {
			ms.words[i*L+l] = st.Mems[mi][i]
		}
	}
	// Refresh the restored lane's bits in the packed slots that mirror
	// inputs and register outputs: those rows were just scattered and no
	// schedule entry rewrites their slots before earlier partitions read
	// them. Instruction-produced slots recompute when the lane, flagged
	// in every partition below, re-evaluates.
	if b.pp != nil {
		for _, s := range b.refreshSlots {
			off := int(b.pp.offOf[s])
			b.pt[s] = b.pt[s]&^(1<<uint(l)) | (b.bt[off*L+l]&1)<<uint(l)
		}
	}
	bit := simrt.LaneMask(1) << uint(l)
	for i := range b.memWr {
		b.memWr[i].valid[l] = 0
	}
	for i := range b.regMask {
		b.regMask[i] &^= bit
	}
	b.laneStats[l] = st.Stats
	for _, c := range b.ctx {
		c.stats[l] = Stats{}
		c.errs[l] = nil
	}
	b.laneErr[l] = nil
	b.live |= bit
	for i := range b.pmask {
		b.pmask[i] |= bit
	}
	for i := range b.specMask {
		b.specMask[i] |= bit
	}
	b.pokedMask |= bit
	for i := range b.base.inputs {
		in := &b.base.inputs[i]
		for w := 0; w < int(in.words); w++ {
			b.prevIn[(int(in.prevOff)+w)*L+l] = ^uint64(0)
		}
	}
	return nil
}

// RestoreState resumes the event-driven engine: architectural values
// plus a full reseed (first-cycle semantics re-evaluate every
// instruction and re-prime the input history).
func (e *EventDriven) RestoreState(st *State) error {
	if err := e.machine.restoreInto(st); err != nil {
		return err
	}
	e.first = true
	e.pendingSeeds = e.pendingSeeds[:0]
	e.heap = e.heap[:0]
	for i := range e.inQueue {
		e.inQueue[i] = false
	}
	for i := range e.wMarked {
		e.wMarked[i] = false
	}
	return nil
}
