package sim

import (
	"math/rand"
	"testing"

	"essent/internal/bits"
	"essent/internal/netlist"
	"essent/internal/randckt"
)

// statePlan is a deterministic poke schedule: replaying it after a
// restore must reproduce the exact stimulus the reference run saw.
type statePlan struct {
	pokes [][]statePoke // per cycle
}

type statePoke struct {
	in    netlist.SignalID
	words []uint64
}

func makeStatePlan(d *netlist.Design, cycles int, seed int64) *statePlan {
	rng := rand.New(rand.NewSource(seed))
	p := &statePlan{pokes: make([][]statePoke, cycles)}
	if len(d.Inputs) == 0 {
		return p
	}
	for cyc := 0; cyc < cycles; cyc++ {
		if cyc != 0 && rng.Intn(3) != 0 {
			continue
		}
		in := d.Inputs[rng.Intn(len(d.Inputs))]
		w := d.Signals[in].Width
		words := make([]uint64, bits.Words(w))
		for i := range words {
			words[i] = rng.Uint64()
		}
		bits.MaskInto(words, w)
		p.pokes[cyc] = append(p.pokes[cyc], statePoke{in, words})
	}
	return p
}

func (p *statePlan) apply(s Simulator, cyc int) {
	for _, pk := range p.pokes[cyc] {
		s.PokeWide(pk.in, pk.words)
	}
}

func stateEngines() []Options {
	return []Options{
		{Engine: EngineFullCycle},
		{Engine: EngineFullCycleOpt},
		{Engine: EngineEventDriven},
		{Engine: EngineCCSS, Cp: 8},
		{Engine: EngineCCSSParallel, Cp: 8, Workers: 2},
	}
}

func closeIfParallel(s Simulator) {
	if p, ok := s.(*ParallelCCSS); ok {
		p.Close()
	}
}

// TestStateRoundTripMatrix is the tentpole guarantee: a snapshot taken
// under ANY engine resumes bit-exactly under ANY other engine — a
// checkpoint from a parallel run replays under sequential CCSS and vice
// versa. Every (source, target) pair is driven with the same stimulus
// and must land on the reference final state at the same cycle.
func TestStateRoundTripMatrix(t *testing.T) {
	c := randckt.Generate(9100, randckt.DefaultConfig())
	d, err := netlist.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	const pre, post = 40, 40
	plan := makeStatePlan(d, pre+post, 91)

	// Reference: one uninterrupted CCSS run.
	ref, err := New(d, Options{Engine: EngineCCSS, Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	for cyc := 0; cyc < pre+post; cyc++ {
		plan.apply(ref, cyc)
		if err := ref.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	want := archState(ref)

	for _, srcOpt := range stateEngines() {
		src, err := New(d, srcOpt)
		if err != nil {
			t.Fatal(err)
		}
		for cyc := 0; cyc < pre; cyc++ {
			plan.apply(src, cyc)
			if err := src.Step(1); err != nil {
				t.Fatal(err)
			}
		}
		st, err := Capture(src)
		if err != nil {
			t.Fatalf("%v capture: %v", srcOpt.Engine, err)
		}
		closeIfParallel(src)
		if st.Cycle != pre {
			t.Fatalf("%v snapshot cycle = %d, want %d", srcOpt.Engine, st.Cycle, pre)
		}

		for _, dstOpt := range stateEngines() {
			dst, err := New(d, dstOpt)
			if err != nil {
				t.Fatal(err)
			}
			if err := Restore(dst, st); err != nil {
				t.Fatalf("%v→%v restore: %v", srcOpt.Engine, dstOpt.Engine, err)
			}
			if got := dst.Stats().Cycles; got != pre {
				t.Fatalf("%v→%v cycles after restore = %d, want %d",
					srcOpt.Engine, dstOpt.Engine, got, pre)
			}
			for cyc := pre; cyc < pre+post; cyc++ {
				plan.apply(dst, cyc)
				if err := dst.Step(1); err != nil {
					t.Fatalf("%v→%v step: %v", srcOpt.Engine, dstOpt.Engine, err)
				}
			}
			if got := archState(dst); got != want {
				t.Fatalf("%v→%v diverged after restore:\nwant %s\ngot  %s",
					srcOpt.Engine, dstOpt.Engine, want, got)
			}
			if got := dst.Stats().Cycles; got != pre+post {
				t.Fatalf("%v→%v final cycles = %d, want %d",
					srcOpt.Engine, dstOpt.Engine, got, pre+post)
			}
			closeIfParallel(dst)
		}
	}
}

// TestRestoreRejectsWrongDesign pins the fingerprint guard: a snapshot
// of one design must not restore into a simulator of another.
func TestRestoreRejectsWrongDesign(t *testing.T) {
	d1, err := netlist.Compile(randckt.Generate(9200, randckt.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := netlist.Compile(randckt.Generate(9201, randckt.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(d1, Options{Engine: EngineCCSS, Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Step(5); err != nil {
		t.Fatal(err)
	}
	st, err := Capture(s1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(d2, Options{Engine: EngineCCSS, Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := Restore(s2, st); err == nil {
		t.Fatal("restore across designs succeeded; want fingerprint error")
	}
}

// TestRestoreStatsContinuation: a restored engine's counters continue
// from the snapshot, not from zero — and restoring does NOT revive
// counters from the target's own discarded run.
func TestRestoreStatsContinuation(t *testing.T) {
	d, err := netlist.Compile(randckt.Generate(9300, randckt.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	src, err := New(d, Options{Engine: EngineCCSS, Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	plan := makeStatePlan(d, 30, 93)
	for cyc := 0; cyc < 30; cyc++ {
		plan.apply(src, cyc)
		if err := src.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	st, err := Capture(src)
	if err != nil {
		t.Fatal(err)
	}

	// Target has its own (longer) history that the restore must discard.
	dst, err := New(d, Options{Engine: EngineCCSS, Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Step(500); err != nil {
		t.Fatal(err)
	}
	if err := Restore(dst, st); err != nil {
		t.Fatal(err)
	}
	got := *dst.Stats()
	if got.Cycles != 30 {
		t.Fatalf("cycles = %d, want 30", got.Cycles)
	}
	if got.OpsEvaluated != st.Stats.OpsEvaluated || got.Wakes != st.Stats.Wakes {
		t.Fatalf("stats not restored: got %+v want %+v", got, st.Stats)
	}
	if err := dst.Step(1); err != nil {
		t.Fatal(err)
	}
	if dst.Stats().Cycles != 31 {
		t.Fatalf("cycles after one step = %d, want 31", dst.Stats().Cycles)
	}
}

// TestBatchLaneStateRoundTrip: a scalar CCSS snapshot loads into a
// batch lane and back; the revived lane tracks the scalar run exactly.
func TestBatchLaneStateRoundTrip(t *testing.T) {
	d, err := netlist.Compile(randckt.Generate(9400, randckt.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	const pre, post = 25, 25
	plan := makeStatePlan(d, pre+post, 94)

	// Scalar reference run, snapshot at pre.
	ref, err := New(d, Options{Engine: EngineCCSS, Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	var snap *State
	for cyc := 0; cyc < pre+post; cyc++ {
		plan.apply(ref, cyc)
		if err := ref.Step(1); err != nil {
			t.Fatal(err)
		}
		if cyc == pre-1 {
			if snap, err = Capture(ref); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Load the snapshot into lane 1 of a 4-lane batch engine and replay
	// the tail of the schedule on that lane only.
	b, err := NewBatchCCSS(d, BatchOptions{Cp: 8, Lanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RestoreLaneState(1, snap); err != nil {
		t.Fatal(err)
	}
	for cyc := pre; cyc < pre+post; cyc++ {
		for _, pk := range plan.pokes[cyc] {
			b.PokeWideLane(1, pk.in, pk.words)
		}
		if err := b.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	lane, want := b.CaptureLaneState(1), mustCapture(t, ref)
	if lane.Cycle != want.Cycle {
		t.Fatalf("lane cycle = %d, want %d", lane.Cycle, want.Cycle)
	}
	if !wordsEqual(lane.Regs, want.Regs) || !wordsEqual(lane.Mems, want.Mems) {
		t.Fatal("revived batch lane diverged from the scalar run")
	}

	// And the extracted lane state restores into a scalar engine. Comb
	// outputs only recompute on the first step after a restore, so the
	// comparison is on captured architectural state, not peeked outputs.
	back, err := New(d, Options{Engine: EngineCCSS, Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := Restore(back, lane); err != nil {
		t.Fatal(err)
	}
	got := mustCapture(t, back)
	if got.Cycle != want.Cycle || !wordsEqual(got.Regs, want.Regs) ||
		!wordsEqual(got.Mems, want.Mems) {
		t.Fatal("lane→scalar restore diverged from the scalar run")
	}
}

func mustCapture(t *testing.T, s Simulator) *State {
	t.Helper()
	st, err := Capture(s)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func wordsEqual(a, b [][]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}
