package sim

import (
	"sort"
	"sync"

	"essent/internal/netlist"
	"essent/internal/partition"
	"essent/internal/sa"
	"essent/internal/sched"
	"essent/internal/verify"
	"essent/pkg/simrt"
)

// VecCCSS is the instance-vectorized CCSS engine: after partitioning,
// structurally identical partitions (replicated module instances —
// systolic PEs, NoC routers, per-core tiles) are grouped into
// equivalence classes of up to 64 members, one schedule is compiled per
// class over a slot-indexed lane-major row buffer, and the whole class
// evaluates through the batch row kernels with a per-instance activity
// mask — the paper's low-activity thesis applied spatially: an idle
// router or tile costs one mask bit test.
//
// The scalar value table t stays authoritative: each group evaluation
// gathers its boundary reads from t into the rows (active lanes only),
// runs the class program, and scatters outputs/state back with the same
// compare-and-wake the scalar walk performs. Member-interior temps stay
// in the persistent per-group row buffer, which makes a lane's stale
// values across evaluations behave exactly like the scalar machine's
// stale t entries under mux-shadow skips.
type VecCCSS struct {
	*CCSS

	groups []vecGroup
	// groupAt maps runtime partition ID → group index (-1 scalar);
	// isLeader marks the member at whose position the group evaluates.
	groupAt  []int32
	isLeader []bool

	workers int
	wbufs   []vecWorkerBuf

	vst VecStats
}

// VecCCSSOptions configures the instance-vectorized engine.
type VecCCSSOptions struct {
	// Cp is the partitioning threshold (0 = paper default).
	Cp int
	// NoElide / NoMuxShadow / NoFuse are the usual ablation knobs,
	// passed through to the underlying CCSS compilation.
	NoElide     bool
	NoMuxShadow bool
	NoFuse      bool
	// Workers > 1 evaluates large groups' lanes in parallel.
	Workers int
	// MaxLanes caps instances per class (2..64; 0 = 64).
	MaxLanes int
	// MinLanes is the cost-model floor: a compiled class packing fewer
	// lanes falls back to the scalar path (per-group gather/scatter
	// overhead swamps the kernel win on fragmented classes — the NoC
	// regression). 0 selects the tuned default (8); 2 accepts every
	// class the legality checks admit.
	MinLanes int
	// NoVec is the ablation switch: compile and run as plain scalar
	// CCSS (no class detection), bit-exact against the vectorized mode.
	NoVec bool
	// NoSA disables static activity analysis during class detection
	// (guard-signature affinity packing; ablation knob — grouping may
	// differ, results stay bit-exact).
	NoSA bool
	// Verify selects static-verification enforcement (includes the
	// SM-VEC rules over the compiled classes).
	Verify verify.Mode
}

// VecStats reports what the class-detection pass found and what the
// engine executed.
type VecStats struct {
	// EligibleParts counts partitions passing the vectorization filter.
	EligibleParts int
	// Classes counts canonical-hash buckets with ≥2 members.
	Classes int
	// Groups counts compiled classes; VecParts sums their lanes.
	Groups   int
	VecParts int
	// MaxLanes is the widest compiled class; MinLanes is the cost-model
	// floor the build applied.
	MaxLanes int
	MinLanes int
	// DroppedGroups counts classes that matched and passed legality but
	// fell below the lane floor (their DroppedParts members run scalar).
	DroppedGroups int
	DroppedParts  int
	// GatedParts counts eligible partitions with a nonzero static
	// toggle-condition signature; SharedGuardGroups counts compiled
	// classes whose lanes all share one such signature (their activity
	// masks move in lockstep).
	GatedParts        int
	SharedGuardGroups int
	// GroupEvals counts group evaluations; LaneEvals sums active lanes
	// over them (GroupEvals × mean activity).
	GroupEvals uint64
	LaneEvals  uint64
}

// vecGroup is one compiled equivalence class.
type vecGroup struct {
	// parts lists member partitions in lane order; parts[0] is the
	// leader, at whose schedule position the class evaluates.
	parts []int32
	lanes int

	// prog is the class schedule: for instruction kinds (seInstr,
	// seSkipIfZeroF/NonzeroF) idx indexes vinstrs; for plain skips
	// (seSkipIfZero/Nonzero) idx is the selector slot.
	prog    []schedEntry
	vinstrs []instr // operands/dst rewritten to slot indices
	nslots  int

	// loads are slots read before written (class boundary reads, and
	// elided registers updated in place): gathered from t per active
	// lane before evaluation.
	loads []int32
	// laneOff[s*lanes+l] is slot s's machine value-table offset in lane
	// l (lane 0 = leader offsets, lane l = φ_l of them).
	laneOff []int32

	// outs are the partition outputs: scattered with change detection
	// and per-lane consumer wakes. stores are written slots holding
	// architectural state not under change detection (elided registers
	// without cross readers, register next values, design output
	// ports): scattered unconditionally.
	outs   []vecOut
	stores []int32

	// regs lists, per lane, the member's non-elided registers to mark
	// dirty for the cycle-boundary commit.
	regs [][]int32

	// buf is the persistent slot-major row buffer [nslots × lanes].
	buf []uint64

	laneScratch []int
}

type vecOut struct {
	slot int32
	// consumers[l] are the partitions lane l wakes on change.
	consumers [][]int32
}

type vecWorkerBuf struct {
	stats Stats
	wakes []int32
	dirty []int32
	pan   any
}

// NewVecCCSS compiles the instance-vectorized engine.
func NewVecCCSS(d *netlist.Design, opts VecCCSSOptions) (*VecCCSS, error) {
	plan, err := sched.PlanCCSSOpts(d, sched.PlanOptions{
		Cp: opts.Cp, NoElide: opts.NoElide, NoMuxShadow: opts.NoMuxShadow,
	})
	if err != nil {
		return nil, err
	}
	c, err := newCCSSFromPlan(d, plan, opts.NoFuse, opts.Verify)
	if err != nil {
		return nil, err
	}
	v := &VecCCSS{CCSS: c, workers: opts.Workers}
	v.groupAt = make([]int32, len(c.parts))
	for i := range v.groupAt {
		v.groupAt[i] = -1
	}
	v.isLeader = make([]bool, len(c.parts))
	if !opts.NoVec {
		maxLanes := opts.MaxLanes
		if maxLanes <= 0 || maxLanes > partition.MaxClassLanes {
			maxLanes = partition.MaxClassLanes
		}
		if maxLanes < 2 {
			maxLanes = 2
		}
		minLanes := opts.MinLanes
		if minLanes <= 0 {
			minLanes = defaultMinVecLanes
		}
		if minLanes < 2 {
			minLanes = 2
		}
		if minLanes > maxLanes {
			minLanes = maxLanes
		}
		v.buildGroups(maxLanes, minLanes, opts.NoSA)
		if opts.Verify != verify.Off {
			if err := verify.Enforce(opts.Verify, v.verifyVec(), nil); err != nil {
				return nil, err
			}
		}
	}
	if v.workers > 1 {
		v.wbufs = make([]vecWorkerBuf, v.workers)
	}
	return v, nil
}

// VecInfo returns the class-detection and execution statistics.
func (v *VecCCSS) VecInfo() VecStats { return v.vst }

// NumGroups returns the compiled class count.
func (v *VecCCSS) NumGroups() int { return len(v.groups) }

// ---------------------------------------------------------------------
// Class detection and compilation.
// ---------------------------------------------------------------------

// vecEligible reports whether partition p may join a class: pure
// narrow/fused combinational body (no sinks, no memory reads, no wide
// or signed lanes), single-word outputs and register storage, and not
// always-on.
func (v *VecCCSS) vecEligible(p int) bool {
	part := &v.parts[p]
	if part.alwaysOn || part.schedEnd == part.schedStart {
		return false
	}
	m := v.machine
	for i := part.schedStart; i < part.schedEnd; i++ {
		e := &m.sched[i]
		switch e.kind {
		case seInstr, seSkipIfZeroF, seSkipIfNonzeroF:
			in := &m.instrs[e.idx]
			if in.code == IMemRead {
				return false
			}
			if in.kind != kNarrow && in.kind != kFused {
				return false
			}
		case seSkipIfZero, seSkipIfNonzero:
			// Selector read becomes a slot.
		default:
			// Displays, checks, memory writes stay scalar.
			return false
		}
	}
	for oi := range part.outputs {
		if part.outputs[oi].words != 1 {
			return false
		}
	}
	for _, ri := range part.regs {
		if v.regNext[ri].words() != 1 || v.regOut[ri].words() != 1 {
			return false
		}
	}
	return true
}

// readOps collects the read-operand table offsets of in into buf,
// returning the count. Must agree with the exec kernels' per-code
// operand usage: unused fields hold stale values and must not be
// translated to slots.
func readOps(in *instr, buf *[4]int32) int {
	switch in.code {
	case ICopy, IShl, IShr, INeg, INot, IAndr, IOrr, IXorr, IBits, IHead, ITail:
		buf[0] = in.a
		return 1
	case IMux:
		buf[0], buf[1], buf[2] = in.a, in.b, in.c
		return 3
	case IFCmpMux:
		buf[0], buf[1], buf[2], buf[3] = in.a, in.b, in.c, in.mem
		return 4
	default:
		buf[0], buf[1] = in.a, in.b
		return 2
	}
}

// sameShape reports structural equality of two instructions modulo
// operand identities (offsets and the out signal).
func sameShape(x, y *instr) bool {
	return x.code == y.code && x.kind == y.kind && x.wide == y.wide &&
		x.sa == y.sa && x.sb == y.sb && x.sc == y.sc &&
		x.aw == y.aw && x.bw == y.bw && x.cw == y.cw && x.dw == y.dw &&
		x.p0 == y.p0 && x.p1 == y.p1 && x.dmask == y.dmask
}

// hashPart computes the canonical structural hash of partition p: the
// schedule walk's shapes verbatim, operand identities under
// first-appearance renaming, and the boundary signature (output and
// register storage shapes). Consumer lists are member-specific and
// excluded.
func (v *VecCCSS) hashPart(p int) uint64 {
	h := partition.NewClassHasher()
	m := v.machine
	part := &v.parts[p]
	var ops [4]int32
	for i := part.schedStart; i < part.schedEnd; i++ {
		e := &m.sched[i]
		h.Word(uint64(e.kind))
		switch e.kind {
		case seInstr, seSkipIfZeroF, seSkipIfNonzeroF:
			in := &m.instrs[e.idx]
			var sbits uint64
			if in.sa {
				sbits |= 1
			}
			if in.sb {
				sbits |= 2
			}
			if in.sc {
				sbits |= 4
			}
			h.Word(uint64(in.code) | uint64(in.kind)<<8 | sbits<<16)
			h.Word(uint64(uint32(in.aw)) | uint64(uint32(in.bw))<<32)
			h.Word(uint64(uint32(in.cw)) | uint64(uint32(in.dw))<<32)
			h.Word(uint64(uint32(in.p0)) | uint64(uint32(in.p1))<<32)
			h.Word(in.dmask)
			n := readOps(in, &ops)
			for k := 0; k < n; k++ {
				h.Ref(ops[k])
			}
			h.Ref(in.dst)
			h.Word(uint64(uint32(e.n)))
		case seSkipIfZero, seSkipIfNonzero:
			h.Ref(e.idx)
			h.Word(uint64(uint32(e.n)))
		}
	}
	h.Word(uint64(len(part.outputs)))
	for oi := range part.outputs {
		h.Word(uint64(part.outputs[oi].words))
		h.Ref(part.outputs[oi].off)
	}
	h.Word(uint64(len(part.regs)))
	for _, ri := range part.regs {
		h.Ref(v.regNext[ri].off)
	}
	return h.Sum()
}

// matchMember attempts the exact lockstep walk binding member mp to
// leader lp. On success it returns φ: leader offset → member offset,
// injective (two distinct leader slots never collapse onto one member
// offset — a collapsed pair with a write would make later reads
// ambiguous between old and new values). The boundary must correspond
// under φ: outputs by offset and width, non-elided register next
// storage as a set.
func (v *VecCCSS) matchMember(lp, mp int) (map[int32]int32, bool) {
	m := v.machine
	a, b := &v.parts[lp], &v.parts[mp]
	n := a.schedEnd - a.schedStart
	if n != b.schedEnd-b.schedStart {
		return nil, false
	}
	phi := make(map[int32]int32)
	rev := make(map[int32]int32)
	bind := func(lo, mo int32) bool {
		if x, ok := phi[lo]; ok {
			return x == mo
		}
		if _, ok := rev[mo]; ok {
			return false
		}
		phi[lo] = mo
		rev[mo] = lo
		return true
	}
	var opsA, opsB [4]int32
	for k := int32(0); k < n; k++ {
		ea, eb := &m.sched[a.schedStart+k], &m.sched[b.schedStart+k]
		if ea.kind != eb.kind || ea.n != eb.n {
			return nil, false
		}
		switch ea.kind {
		case seInstr, seSkipIfZeroF, seSkipIfNonzeroF:
			ia, ib := &m.instrs[ea.idx], &m.instrs[eb.idx]
			if !sameShape(ia, ib) {
				return nil, false
			}
			na := readOps(ia, &opsA)
			readOps(ib, &opsB)
			for j := 0; j < na; j++ {
				if !bind(opsA[j], opsB[j]) {
					return nil, false
				}
			}
			if !bind(ia.dst, ib.dst) {
				return nil, false
			}
		case seSkipIfZero, seSkipIfNonzero:
			if !bind(ea.idx, eb.idx) {
				return nil, false
			}
		default:
			return nil, false
		}
	}
	if len(a.outputs) != len(b.outputs) || len(a.regs) != len(b.regs) {
		return nil, false
	}
	boff := make(map[int32]int32, len(b.outputs))
	for oi := range b.outputs {
		boff[b.outputs[oi].off] = b.outputs[oi].words
	}
	for oi := range a.outputs {
		mo, ok := phi[a.outputs[oi].off]
		if !ok {
			return nil, false
		}
		if w, ok := boff[mo]; !ok || w != a.outputs[oi].words {
			return nil, false
		}
	}
	bnext := make(map[int32]bool, len(b.regs))
	for _, ri := range b.regs {
		bnext[v.regNext[ri].off] = true
	}
	for _, ri := range a.regs {
		mo, ok := phi[v.regNext[ri].off]
		if !ok || !bnext[mo] {
			return nil, false
		}
	}
	return phi, true
}

// partPreds reconstructs the partition DAG's predecessor lists with
// edge types from the plan: data edges from cross-partition node
// adjacency, ordering edges (reader scheduled before the in-place
// writer) from elided registers' cross-partition readers.
func (v *VecCCSS) partPreds() (data, ord [][]int32) {
	plan := v.plan
	dg := plan.DG
	np := len(v.parts)
	partOfNode := make([]int32, dg.G.Len())
	for i := range partOfNode {
		partOfNode[i] = -1
	}
	for p := range plan.Parts {
		for _, n := range plan.Parts[p].Members {
			partOfNode[n] = int32(p)
		}
	}
	data = make([][]int32, np)
	for p := range plan.Parts {
		for _, u := range plan.Parts[p].Members {
			for _, vn := range dg.G.Out(u) {
				q := partOfNode[vn]
				if q >= 0 && q != int32(p) {
					data[q] = append(data[q], int32(p))
				}
			}
		}
	}
	ord = make([][]int32, np)
	d := v.machine.d
	for ri := range d.Regs {
		if ri >= len(plan.Elided) || !plan.Elided[ri] {
			continue
		}
		w := partOfNode[int(d.Regs[ri].Next)]
		if w < 0 {
			continue
		}
		for _, q := range plan.RegReaderParts[ri] {
			if int32(q) != w {
				ord[w] = append(ord[w], int32(q))
			}
		}
	}
	for p := 0; p < np; p++ {
		data[p] = dedupInt32(data[p])
		ord[p] = dedupInt32(ord[p])
	}
	return data, ord
}

func dedupInt32(xs []int32) []int32 {
	if len(xs) < 2 {
		return xs
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// defaultMinVecLanes is the tuned lane floor: the PR 7 sweep showed
// classes below ~8 lanes losing to scalar on fragmented designs (noc8
// shipped at 0.74× with ~5-lane groups) while dense classes (r16 4×4,
// mac16) sit at or above it.
const defaultMinVecLanes = 8

// guardSignatures computes, per partition, a hash of the partition's
// *external* static toggle condition: the set of observability and
// register-hold guard literals (from internal/sa) whose guard signal
// lives outside the partition. Partitions sharing a signature are gated
// by the same condition and so toggle in lockstep — packing them into
// the same class keeps the group activity mask all-or-nothing. Internal
// literals are excluded deliberately: replicated instances gate on
// structurally identical but distinct local enables, and keying on those
// would split every class of independently-enabled instances (the mac16
// shape) down to singletons.
//
// Returns nil (no affinity) when analysis is ablated or fails.
func (v *VecCCSS) guardSignatures(noSA bool) []uint64 {
	if noSA {
		return nil
	}
	d := v.machine.d
	r, err := sa.Analyze(d, sa.Options{})
	if err != nil {
		return nil
	}
	plan := v.plan
	sigs := make([]uint64, len(plan.Parts))
	nsig := len(d.Signals)
	member := make([]int32, nsig)
	for i := range member {
		member[i] = -1
	}
	for p := range plan.Parts {
		for _, n := range plan.Parts[p].Members {
			if n < nsig {
				member[n] = int32(p)
			}
		}
	}
	var lits []sa.Guard
	for p := range plan.Parts {
		lits = lits[:0]
		add := func(g sa.Guard) {
			if g.Sig == netlist.NoSignal || member[g.Sig] == int32(p) {
				return
			}
			for _, x := range lits {
				if x == g {
					return
				}
			}
			lits = append(lits, g)
		}
		for _, n := range plan.Parts[p].Members {
			if n >= nsig || !r.Observed[n] {
				continue
			}
			for _, g := range r.Guards[n] {
				add(g)
			}
		}
		for _, ri := range plan.Parts[p].Regs {
			add(r.RegHold[ri])
		}
		sa.SortGuards(lits)
		sigs[p] = sa.SignatureOf(lits)
	}
	return sigs
}

// buildGroups runs class detection: eligibility filter, canonical-hash
// bucketing, then greedy grouping in schedule order with the exact
// lockstep match and the schedule-legality check. Two cost-model inputs
// shape the result: candidates prefer joining a group whose leader
// shares their static toggle-condition signature (correlated lanes keep
// group evaluations all-or-nothing), and any compiled class packing
// fewer than minLanes lanes is dropped back to the scalar path.
//
// Legality: member p evaluates at its leader L's (earlier) position.
// Every data predecessor X of p must already be final by then —
// effPos(X) < pos(L), where effPos is X's own leader position if X is
// grouped — and must not sit in p's own group (intra-class data flow
// would need intra-evaluation ordering). Ordering predecessors
// (readers of an elided register p writes) are legal inside the group
// — all lanes gather before any lane scatters — and must otherwise
// also satisfy effPos(X) < pos(L). The rule stays sound under later
// regrouping because grouping only ever moves a partition's effective
// position earlier (leaders precede members in schedule order).
func (v *VecCCSS) buildGroups(maxLanes, minLanes int, noSA bool) {
	dataPreds, ordPreds := v.partPreds()
	v.vst.MinLanes = minLanes

	var eligible []int
	hashOf := make(map[int]uint64)
	for p := range v.parts {
		if v.vecEligible(p) {
			eligible = append(eligible, p)
			hashOf[p] = v.hashPart(p)
		}
	}
	v.vst.EligibleParts = len(eligible)
	sigOf := v.guardSignatures(noSA)
	for _, p := range eligible {
		if sigOf != nil && sigOf[p] != 0 {
			v.vst.GatedParts++
		}
	}
	buckets := partition.GroupByHash(eligible, hashOf)
	v.vst.Classes = len(buckets)

	// grpOf tracks build-time membership: partition → open-group index.
	grpOf := make([]int32, len(v.parts))
	for i := range grpOf {
		grpOf[i] = -1
	}
	type openGroup struct {
		members []int
		phis    []map[int32]int32 // phis[0] == nil (leader identity)
	}
	var open []openGroup

	legal := func(p int, gi int32, leader int) bool {
		for _, x := range dataPreds[p] {
			if grpOf[x] == gi {
				return false
			}
			ep := x
			if g := grpOf[x]; g >= 0 {
				ep = int32(open[g].members[0])
			}
			if int(ep) >= leader {
				return false
			}
		}
		for _, x := range ordPreds[p] {
			if grpOf[x] == gi {
				continue
			}
			ep := x
			if g := grpOf[x]; g >= 0 {
				ep = int32(open[g].members[0])
			}
			if int(ep) >= leader {
				return false
			}
		}
		return true
	}

	// tryJoin attempts to add cand to an existing open group in
	// [first,len(open)); sameSigOnly restricts to groups whose leader
	// shares cand's toggle-condition signature. Candidates are visited
	// in schedule order, so any group a candidate joins has an earlier
	// leader — the legality rule's invariant.
	tryJoin := func(cand, first int, sameSigOnly bool) bool {
		for gi := first; gi < len(open); gi++ {
			g := &open[gi]
			if sameSigOnly && sigOf[g.members[0]] != sigOf[cand] {
				continue
			}
			if len(g.members) >= maxLanes {
				continue
			}
			if !legal(cand, int32(gi), g.members[0]) {
				continue
			}
			phi, ok := v.matchMember(g.members[0], cand)
			if !ok {
				continue
			}
			g.members = append(g.members, cand)
			g.phis = append(g.phis, phi)
			grpOf[cand] = int32(gi)
			return true
		}
		return false
	}
	// Reverting a multi-member group after packing is NOT sound in
	// isolation: its members fall back to their own (later) schedule
	// positions, which can invalidate the legality of other groups that
	// counted on them resolving at an early leader. So the floor (and
	// the finalize fallback) ban the affected partitions from candidacy
	// and repack from scratch; every round bans at least one partition,
	// so the loop terminates.
	stateOffs := v.stateOffsets()
	banned := make([]bool, len(v.parts))
	var finals []*vecGroup
	var finalMembers [][]int
	for {
		for i := range grpOf {
			grpOf[i] = -1
		}
		open = open[:0]
		for _, bucket := range buckets {
			first := len(open)
			for _, cand := range bucket {
				if banned[cand] {
					continue
				}
				// Signature affinity: partitions gated by the same
				// external condition toggle together, so cluster them
				// first; fall back to any structurally legal group.
				joined := sigOf != nil && sigOf[cand] != 0 &&
					tryJoin(cand, first, true)
				if !joined {
					joined = tryJoin(cand, first, false)
				}
				if !joined {
					open = append(open, openGroup{
						members: []int{cand},
						phis:    []map[int32]int32{nil},
					})
					grpOf[cand] = int32(len(open) - 1)
				}
			}
		}
		// Cost-model floor: a matched class below the lane floor loses
		// to scalar on gather/scatter overhead — revert it rather than
		// ship a fragmented group (the noc8 regression).
		repack := false
		for gi := range open {
			g := &open[gi]
			if len(g.members) >= 2 && len(g.members) < minLanes {
				v.vst.DroppedGroups++
				v.vst.DroppedParts += len(g.members)
				for _, p := range g.members {
					banned[p] = true
				}
				repack = true
			}
		}
		if repack {
			continue
		}
		finals = finals[:0]
		finalMembers = finalMembers[:0]
		for gi := range open {
			g := &open[gi]
			if len(g.members) < 2 {
				continue
			}
			vg := v.finalizeGroup(g.members, g.phis, stateOffs)
			if vg == nil {
				for _, p := range g.members {
					banned[p] = true
				}
				repack = true
				continue
			}
			finals = append(finals, vg)
			finalMembers = append(finalMembers, g.members)
		}
		if !repack {
			break
		}
	}

	for fi, vg := range finals {
		members := finalMembers[fi]
		idx := int32(len(v.groups))
		v.groups = append(v.groups, *vg)
		for _, p := range members {
			v.groupAt[p] = idx
		}
		v.isLeader[members[0]] = true
		v.vst.Groups++
		v.vst.VecParts += len(members)
		if len(members) > v.vst.MaxLanes {
			v.vst.MaxLanes = len(members)
		}
		if sigOf != nil {
			shared := sigOf[members[0]]
			if shared != 0 {
				all := true
				for _, p := range members[1:] {
					if sigOf[p] != shared {
						all = false
						break
					}
				}
				if all {
					v.vst.SharedGuardGroups++
				}
			}
		}
	}
}

// stateOffsets collects every single-word value-table offset holding
// architectural state a partition body may write: elided registers'
// output storage, every register's next storage, and the design's
// output ports. Any class slot landing on one of these in any lane must
// scatter back to t (checkpoint capture and the cycle-boundary commit
// read t, and external observers peek output ports).
func (v *VecCCSS) stateOffsets() map[int32]bool {
	m := v.machine
	d := m.d
	offs := make(map[int32]bool)
	for ri := range d.Regs {
		if ri < len(v.plan.Elided) && v.plan.Elided[ri] {
			offs[m.off[d.Regs[ri].Out]] = true
		}
		offs[v.regNext[ri].off] = true
	}
	for _, out := range d.Outputs {
		offs[m.off[out]] = true
	}
	return offs
}

// finalizeGroup compiles one class: walk the leader's schedule once,
// assigning slots to offsets in first-appearance order (a first
// appearance as a read marks a boundary load), rewrite the instruction
// stream into slot space, and derive the scatter sets. Returns nil if
// an output was never assigned a slot (nothing in the walk wrote or
// read it — cannot happen for a well-formed schedule, but fall back to
// scalar rather than miscompile).
func (v *VecCCSS) finalizeGroup(members []int, phis []map[int32]int32,
	stateOffs map[int32]bool) *vecGroup {
	m := v.machine
	leader := members[0]
	part := &v.parts[leader]
	lanes := len(members)

	g := &vecGroup{lanes: lanes}
	g.parts = make([]int32, lanes)
	for i, p := range members {
		g.parts[i] = int32(p)
	}

	slotOf := make(map[int32]int32)
	var slotOffs []int32 // slot → leader offset
	written := make(map[int32]bool)
	slot := func(off int32, read bool) int32 {
		s, ok := slotOf[off]
		if !ok {
			s = int32(len(slotOffs))
			slotOf[off] = s
			slotOffs = append(slotOffs, off)
			if read {
				g.loads = append(g.loads, s)
			}
		}
		return s
	}

	var ops [4]int32
	for i := part.schedStart; i < part.schedEnd; i++ {
		e := &m.sched[i]
		switch e.kind {
		case seInstr, seSkipIfZeroF, seSkipIfNonzeroF:
			in := m.instrs[e.idx]
			n := readOps(&in, &ops)
			vi := in
			vi.a, vi.b, vi.c, vi.mem = -1, -1, -1, -1
			slots := [4]int32{}
			for k := 0; k < n; k++ {
				slots[k] = slot(ops[k], true)
			}
			switch in.code {
			case ICopy, IShl, IShr, INeg, INot, IAndr, IOrr, IXorr,
				IBits, IHead, ITail:
				vi.a = slots[0]
			case IMux:
				vi.a, vi.b, vi.c = slots[0], slots[1], slots[2]
			case IFCmpMux:
				vi.a, vi.b, vi.c, vi.mem = slots[0], slots[1], slots[2], slots[3]
			default:
				vi.a, vi.b = slots[0], slots[1]
			}
			ds := slot(in.dst, false)
			written[ds] = true
			vi.dst = ds
			g.prog = append(g.prog, schedEntry{kind: e.kind,
				idx: int32(len(g.vinstrs)), n: e.n})
			g.vinstrs = append(g.vinstrs, vi)
		case seSkipIfZero, seSkipIfNonzero:
			g.prog = append(g.prog, schedEntry{kind: e.kind,
				idx: slot(e.idx, true), n: e.n})
		}
	}
	g.nslots = len(slotOffs)

	// Per-lane offsets: lane 0 is the leader verbatim, lane l maps
	// through φ_l. Every slot offset appeared in the walk, so φ_l is
	// total over them by construction.
	g.laneOff = make([]int32, g.nslots*lanes)
	for s, off := range slotOffs {
		g.laneOff[s*lanes] = off
		for l := 1; l < lanes; l++ {
			mo, ok := phis[l][off]
			if !ok {
				return nil
			}
			g.laneOff[s*lanes+l] = mo
		}
	}

	// Outputs: change detection + per-lane consumer wakes.
	outSlots := make(map[int32]bool)
	for oi := range part.outputs {
		o := &part.outputs[oi]
		s, ok := slotOf[o.off]
		if !ok {
			return nil
		}
		vo := vecOut{slot: s, consumers: make([][]int32, lanes)}
		vo.consumers[0] = o.consumers
		for l := 1; l < lanes; l++ {
			mp := &v.parts[members[l]]
			moff := phis[l][o.off]
			found := false
			for mi := range mp.outputs {
				if mp.outputs[mi].off == moff {
					vo.consumers[l] = mp.outputs[mi].consumers
					found = true
					break
				}
			}
			if !found {
				return nil
			}
		}
		g.outs = append(g.outs, vo)
		outSlots[s] = true
	}

	// Stores: written slots holding state in any lane, minus outputs.
	for s := range written {
		if outSlots[s] {
			continue
		}
		for l := 0; l < lanes; l++ {
			if stateOffs[g.laneOff[int(s)*lanes+l]] {
				g.stores = append(g.stores, s)
				break
			}
		}
	}
	sort.Slice(g.stores, func(i, j int) bool { return g.stores[i] < g.stores[j] })
	sort.Slice(g.loads, func(i, j int) bool { return g.loads[i] < g.loads[j] })

	g.regs = make([][]int32, lanes)
	for l, p := range members {
		g.regs[l] = v.parts[p].regs
	}

	g.buf = make([]uint64, g.nslots*lanes)
	g.laneScratch = make([]int, 0, lanes)
	return g
}

// ---------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------

// Step simulates n cycles through the vectorized walk.
func (v *VecCCSS) Step(n int) error {
	for i := 0; i < n; i++ {
		if err := v.stepOne(); err != nil {
			return err
		}
	}
	return nil
}

func (v *VecCCSS) stepOne() error {
	if v.stopErr != nil {
		return v.stopErr
	}
	v.scanInputs()
	m := v.machine
	for p := range v.parts {
		m.stats.PartChecks++
		if g := v.groupAt[p]; g >= 0 {
			// Members evaluate at their leader's position; wakes
			// arriving later in the walk can only come from the
			// cycle-boundary commit and are collected next cycle —
			// the legality rule placed every data predecessor
			// before the leader.
			if v.isLeader[p] {
				v.runGroup(&v.groups[g])
			}
			continue
		}
		if !v.flags[p] && !v.parts[p].alwaysOn {
			continue
		}
		v.evalPart(p)
	}
	return v.finishCycle()
}

// vecParMinActive is the active-lane threshold below which parallel
// group evaluation is never worth the goroutine fan-out.
const vecParMinActive = 16

// runGroup evaluates one class: collect member flags into the activity
// mask, gather boundary reads for active lanes, run the class program,
// scatter with compare-and-wake. Inactive lanes cost their flag test
// only.
func (v *VecCCSS) runGroup(g *vecGroup) {
	var mask simrt.LaneMask
	for l, p := range g.parts {
		if v.flags[p] {
			v.flags[p] = false
			mask |= 1 << uint(l)
		}
	}
	if mask == 0 {
		return
	}
	m := v.machine
	n := mask.Count()
	m.stats.PartEvals += uint64(n)
	v.vst.GroupEvals++
	v.vst.LaneEvals += uint64(n)
	g.laneScratch = mask.Lanes(g.laneScratch[:0])
	lanes := g.laneScratch

	// Phase 1: gather boundary reads from t (active lanes only —
	// inactive lanes keep their rows, exactly as the scalar machine
	// keeps a sleeping partition's t entries).
	t := m.t
	L := g.lanes
	for _, s := range g.loads {
		row := g.buf[int(s)*L : int(s)*L+L]
		offs := g.laneOff[int(s)*L : int(s)*L+L]
		for _, l := range lanes {
			row[l] = t[offs[l]]
		}
	}

	if v.workers > 1 && n >= vecParMinActive {
		v.runGroupParallel(g, mask, lanes)
		return
	}

	// Phase 2: evaluate into the row buffer.
	m.stats.OpsEvaluated += execGroup(g, mask, lanes)

	// Phase 3: scatter, compare, wake, mark dirty registers.
	v.scatterLanes(g, lanes, &m.stats, nil, &v.dirtyRegs)
}

// scatterLanes writes the evaluated lanes back to t. Outputs get the
// scalar walk's compare-and-wake (the pre-scatter t value is the old
// value — nothing else writes these offsets); stores write
// unconditionally. When wakeBuf is non-nil (parallel workers), wakes
// are buffered instead of setting flags directly.
func (v *VecCCSS) scatterLanes(g *vecGroup, lanes []int, st *Stats,
	wakeBuf *[]int32, dirty *[]int32) {
	t := v.machine.t
	L := g.lanes
	for oi := range g.outs {
		o := &g.outs[oi]
		row := g.buf[int(o.slot)*L : int(o.slot)*L+L]
		offs := g.laneOff[int(o.slot)*L : int(o.slot)*L+L]
		for _, l := range lanes {
			st.OutputCompares++
			nv := row[l]
			if t[offs[l]] != nv {
				t[offs[l]] = nv
				st.SignalChanges++
				cons := o.consumers[l]
				if wakeBuf != nil {
					*wakeBuf = append(*wakeBuf, cons...)
				} else {
					for _, q := range cons {
						v.flags[q] = true
					}
				}
				st.Wakes += uint64(len(cons))
			}
		}
	}
	for _, s := range g.stores {
		row := g.buf[int(s)*L : int(s)*L+L]
		offs := g.laneOff[int(s)*L : int(s)*L+L]
		for _, l := range lanes {
			t[offs[l]] = row[l]
		}
	}
	for _, l := range lanes {
		if rs := g.regs[l]; len(rs) > 0 {
			*dirty = append(*dirty, rs...)
		}
	}
}

// runGroupParallel splits the active lanes into contiguous chunks, one
// goroutine each: evaluation writes disjoint buffer rows, scatter
// writes disjoint t offsets (each lane owns its member's storage), and
// wakes/stats/dirty registers buffer per worker for a deterministic
// serial merge in lane order. The boundary gathers already ran — every
// cross-lane read (an elided register another lane writes) sees the
// pre-evaluation value, as the gather-before-scatter contract requires.
func (v *VecCCSS) runGroupParallel(g *vecGroup, mask simrt.LaneMask, lanes []int) {
	nw := v.workers
	if max := len(lanes) / 8; nw > max {
		nw = max
	}
	if nw < 2 {
		nw = 2
	}
	chunk := (len(lanes) + nw - 1) / nw
	var wg sync.WaitGroup
	used := 0
	for w := 0; w*chunk < len(lanes); w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(lanes) {
			hi = len(lanes)
		}
		wb := &v.wbufs[w]
		wb.stats = Stats{}
		wb.wakes = wb.wakes[:0]
		wb.dirty = wb.dirty[:0]
		wb.pan = nil
		used = w + 1
		sub := lanes[lo:hi]
		var subMask simrt.LaneMask
		for _, l := range sub {
			subMask |= 1 << uint(l)
		}
		wg.Add(1)
		go func(wb *vecWorkerBuf, sub []int, subMask simrt.LaneMask) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					wb.pan = r
				}
			}()
			wb.stats.OpsEvaluated += execGroup(g, subMask, sub)
			v.scatterLanes(g, sub, &wb.stats, &wb.wakes, &wb.dirty)
		}(wb, sub, subMask)
	}
	wg.Wait()
	m := v.machine
	for w := 0; w < used; w++ {
		wb := &v.wbufs[w]
		if wb.pan != nil {
			panic(wb.pan)
		}
		m.stats.OpsEvaluated += wb.stats.OpsEvaluated
		m.stats.OutputCompares += wb.stats.OutputCompares
		m.stats.SignalChanges += wb.stats.SignalChanges
		m.stats.Wakes += wb.stats.Wakes
		for _, q := range wb.wakes {
			v.flags[q] = true
		}
		v.dirtyRegs = append(v.dirtyRegs, wb.dirty...)
	}
}

var _ Simulator = (*VecCCSS)(nil)
