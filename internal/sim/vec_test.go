package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"essent/internal/netlist"
	"essent/internal/randckt"
	"essent/internal/verify"
)

// replicated builds a FIRRTL circuit with n structurally identical
// saturating-accumulator instances sharing global controls — the
// smallest design where class detection must fire. Each instance has a
// private data input and output so lanes diverge under stimulus.
func replicatedSrc(n int) string {
	src := `
circuit Rep :
  module Rep :
    input clock : Clock
    input en : UInt<1>
    input clr : UInt<1>
`
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("    input d%d : UInt<8>\n", i)
	}
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("    output q%d : UInt<8>\n", i)
	}
	for i := 0; i < n; i++ {
		src += fmt.Sprintf(`    reg acc%[1]d : UInt<8>, clock
    node sum%[1]d = tail(add(acc%[1]d, d%[1]d), 1)
    node nx%[1]d = mux(clr, UInt<8>(0), mux(en, sum%[1]d, acc%[1]d))
    acc%[1]d <= nx%[1]d
    q%[1]d <= acc%[1]d
`, i)
	}
	return src
}

func compileVecTest(t *testing.T, src string) *netlist.Design {
	t.Helper()
	return compileSrc(t, src)
}

// TestVecFindsClasses: the replicated accumulator bank must produce at
// least one multi-lane class under the vec pass.
func TestVecFindsClasses(t *testing.T) {
	d := compileVecTest(t, replicatedSrc(8))
	v, err := NewVecCCSS(d, VecCCSSOptions{MinLanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := v.VecInfo()
	if st.Groups == 0 || st.VecParts < 2 {
		t.Fatalf("no classes found: %+v", st)
	}
	t.Logf("vec stats: %+v", st)
}

// stepCompare drives identical stimulus into both simulators and
// fails on the first architectural-state divergence.
func stepCompare(t *testing.T, ref, got Simulator, d *netlist.Design,
	seed int64, cycles int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for cyc := 0; cyc < cycles; cyc++ {
		if cyc == 0 || rng.Intn(3) == 0 {
			pokeRandom(rng, []Simulator{ref, got}, d)
		}
		if err := ref.Step(1); err != nil {
			t.Fatalf("cycle %d ref: %v", cyc, err)
		}
		if err := got.Step(1); err != nil {
			t.Fatalf("cycle %d vec: %v", cyc, err)
		}
		if r, g := archState(ref), archState(got); r != g {
			t.Fatalf("cycle %d diverged:\nref: %s\nvec: %s", cyc, r, g)
		}
	}
}

// TestVecEquivalenceReplicated: state and Stats bit-exact vs scalar
// CCSS on the design where vectorization fires.
func TestVecEquivalenceReplicated(t *testing.T) {
	for _, n := range []int{2, 3, 8, 16} {
		d := compileVecTest(t, replicatedSrc(n))
		ref, err := NewCCSS(d, CCSSOptions{})
		if err != nil {
			t.Fatal(err)
		}
		v, err := NewVecCCSS(d, VecCCSSOptions{MinLanes: 2})
		if err != nil {
			t.Fatal(err)
		}
		stepCompare(t, ref, v, d, int64(n)*7, 200)
		if rs, vs := *ref.Stats(), *v.Stats(); rs != vs {
			t.Fatalf("n=%d stats diverged:\nref: %+v\nvec: %+v", n, rs, vs)
		}
	}
}

// TestVecEquivalenceNoVec: the ablation switch must behave as scalar
// CCSS exactly.
func TestVecEquivalenceNoVec(t *testing.T) {
	d := compileVecTest(t, replicatedSrc(4))
	ref, err := NewCCSS(d, CCSSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVecCCSS(d, VecCCSSOptions{NoVec: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.NumGroups() != 0 {
		t.Fatalf("NoVec compiled %d groups", v.NumGroups())
	}
	stepCompare(t, ref, v, d, 99, 150)
	if rs, vs := *ref.Stats(), *v.Stats(); rs != vs {
		t.Fatalf("stats diverged:\nref: %+v\nvec: %+v", rs, vs)
	}
}

// TestVecEquivalenceFuzz: on random circuits the pass rarely finds
// classes, but whatever it compiles must stay bit-exact — including
// Stats — against scalar CCSS.
func TestVecEquivalenceFuzz(t *testing.T) {
	seeds := 30
	cycles := 100
	if testing.Short() {
		seeds, cycles = 5, 50
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		c := randckt.Generate(seed, randckt.DefaultConfig())
		d, err := netlist.Compile(c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref, err := NewCCSS(d, CCSSOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		v, err := NewVecCCSS(d, VecCCSSOptions{MinLanes: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(seed * 17))
		for cyc := 0; cyc < cycles; cyc++ {
			if cyc == 0 || rng.Intn(4) == 0 {
				pokeRandom(rng, []Simulator{ref, v}, d)
			}
			errRef := ref.Step(1)
			errVec := v.Step(1)
			if (errRef == nil) != (errVec == nil) {
				t.Fatalf("seed %d cyc %d: err mismatch ref=%v vec=%v",
					seed, cyc, errRef, errVec)
			}
			if r, g := archState(ref), archState(v); r != g {
				t.Fatalf("seed %d cyc %d diverged:\nref: %s\nvec: %s",
					seed, cyc, r, g)
			}
			if errRef != nil {
				break
			}
		}
		if rs, vs := *ref.Stats(), *v.Stats(); rs != vs {
			t.Fatalf("seed %d stats diverged:\nref: %+v\nvec: %+v", seed, rs, vs)
		}
	}
}

// TestVecCheckpointRoundTrip: capture mid-run, restore into a fresh
// vec engine and into a scalar engine, and verify all three march in
// lockstep afterwards.
func TestVecCheckpointRoundTrip(t *testing.T) {
	d := compileVecTest(t, replicatedSrc(8))
	v, err := NewVecCCSS(d, VecCCSSOptions{MinLanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for cyc := 0; cyc < 60; cyc++ {
		if rng.Intn(3) == 0 {
			pokeRandom(rng, []Simulator{v}, d)
		}
		if err := v.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	st, err := Capture(v)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := NewVecCCSS(d, VecCCSSOptions{MinLanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := Restore(v2, st); err != nil {
		t.Fatal(err)
	}
	ref, err := NewCCSS(d, CCSSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Restore(ref, st); err != nil {
		t.Fatal(err)
	}
	rng2 := rand.New(rand.NewSource(43))
	sims := []Simulator{ref, v, v2}
	for cyc := 0; cyc < 80; cyc++ {
		if rng2.Intn(3) == 0 {
			pokeRandom(rng2, sims, d)
		}
		for _, s := range sims {
			if err := s.Step(1); err != nil {
				t.Fatal(err)
			}
		}
		base := archState(sims[0])
		for si, s := range sims[1:] {
			if got := archState(s); got != base {
				t.Fatalf("cycle %d sim %d diverged:\nref: %s\ngot: %s",
					cyc, si+1, base, got)
			}
		}
	}
}

// TestVecWorkers: parallel lane evaluation must match the serial walk
// bit for bit (state and Stats); run under -race this also proves the
// two-phase gather/scatter has no data races.
func TestVecWorkers(t *testing.T) {
	d := compileVecTest(t, replicatedSrc(32))
	ref, err := NewCCSS(d, CCSSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVecCCSS(d, VecCCSSOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v.VecInfo().MaxLanes < vecParMinActive {
		t.Fatalf("want a group wide enough to exercise workers, got %+v",
			v.VecInfo())
	}
	stepCompare(t, ref, v, d, 7, 200)
	if rs, vs := *ref.Stats(), *v.Stats(); rs != vs {
		t.Fatalf("stats diverged:\nref: %+v\nvec: %+v", rs, vs)
	}
}

// TestVecMaxLanes: the lane cap splits wide classes without changing
// results.
func TestVecMaxLanes(t *testing.T) {
	d := compileVecTest(t, replicatedSrc(16))
	for _, cap := range []int{2, 3, 5, 64} {
		ref, err := NewCCSS(d, CCSSOptions{})
		if err != nil {
			t.Fatal(err)
		}
		v, err := NewVecCCSS(d, VecCCSSOptions{MaxLanes: cap, MinLanes: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got := v.VecInfo().MaxLanes; got > cap {
			t.Fatalf("cap %d: widest group %d", cap, got)
		}
		stepCompare(t, ref, v, d, int64(cap), 120)
	}
}

// Mutation tests: corrupt a compiled engine's class tables and verify
// the SM-VEC rules catch each corruption.
func TestVecVerifierMutations(t *testing.T) {
	build := func(t *testing.T) *VecCCSS {
		d := compileVecTest(t, replicatedSrc(6))
		v, err := NewVecCCSS(d, VecCCSSOptions{MinLanes: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(v.groups) == 0 {
			t.Fatal("no groups to mutate")
		}
		return v
	}
	expect := func(t *testing.T, v *VecCCSS, rule string) {
		t.Helper()
		diags := v.verifyVec()
		for _, dg := range diags {
			if dg.Rule == rule {
				return
			}
		}
		t.Fatalf("mutation not caught; want %s, diags: %+v", rule, diags)
	}
	t.Run("clean", func(t *testing.T) {
		v := build(t)
		if diags := v.verifyVec(); len(diags) != 0 {
			t.Fatalf("clean engine has diagnostics: %+v", diags)
		}
	})
	t.Run("duplicate-member", func(t *testing.T) {
		v := build(t)
		v.groups[0].parts[1] = v.groups[0].parts[0]
		expect(t, v, "SM-VEC-CLASS")
	})
	t.Run("leader-not-earliest", func(t *testing.T) {
		v := build(t)
		g := &v.groups[0]
		g.parts[0], g.parts[1] = g.parts[1], g.parts[0]
		expect(t, v, "SM-VEC-CLASS")
	})
	t.Run("lane-offset-collision", func(t *testing.T) {
		v := build(t)
		g := &v.groups[0]
		if g.nslots < 2 {
			t.Skip("need two slots")
		}
		g.laneOff[1*g.lanes] = g.laneOff[0]
		expect(t, v, "SM-VEC-MAP")
	})
	t.Run("load-dropped", func(t *testing.T) {
		v := build(t)
		g := &v.groups[0]
		if len(g.loads) == 0 {
			t.Skip("no loads")
		}
		g.loads = g.loads[:len(g.loads)-1]
		expect(t, v, "SM-VEC-DEFUSE")
	})
	t.Run("out-unwritten", func(t *testing.T) {
		v := build(t)
		g := &v.groups[0]
		if len(g.outs) == 0 || len(g.loads) == 0 {
			t.Skip("need an out and a load")
		}
		// Point an out at a load-only slot: never written by the program.
		pure := int32(-1)
		written := make(map[int32]bool)
		for _, in := range g.vinstrs {
			written[in.dst] = true
		}
		for _, s := range g.loads {
			if !written[s] {
				pure = s
				break
			}
		}
		if pure < 0 {
			t.Skip("every load also written")
		}
		g.outs[0].slot = pure
		expect(t, v, "SM-VEC-DEFUSE")
	})
	t.Run("scatter-dropped", func(t *testing.T) {
		v := build(t)
		g := &v.groups[0]
		if len(g.outs) == 0 {
			t.Skip("no outs")
		}
		g.outs = g.outs[:len(g.outs)-1]
		expect(t, v, "SM-VEC-SCATTER")
	})
	t.Run("wrong-consumers", func(t *testing.T) {
		v := build(t)
		g := &v.groups[0]
		if len(g.outs) == 0 {
			t.Skip("no outs")
		}
		// Splice lane 1's consumer list onto lane 0 with a bogus extra
		// entry: lengths diverge from the member's own list.
		g.outs[0].consumers[0] = append(append([]int32{},
			g.outs[0].consumers[0]...), 0)
		expect(t, v, "SM-VEC-SCATTER")
	})
	t.Run("illegal-position", func(t *testing.T) {
		v := build(t)
		// Fabricate a dependence violation by swapping the group's
		// leader with a partition scheduled after every member: claim
		// the last partition is lane 0's member.
		g := &v.groups[0]
		last := int32(len(v.parts) - 1)
		if v.groupAt[last] >= 0 || g.parts[len(g.parts)-1] >= last {
			t.Skip("no free late partition")
		}
		old := g.parts[len(g.parts)-1]
		v.groupAt[old] = -1
		g.parts[len(g.parts)-1] = last
		v.groupAt[last] = 0
		// The fake member has its own preds; with luck they sit after
		// the leader. Accept either POS or SCATTER (its boundary will
		// not match the class shape).
		diags := v.verifyVec()
		if len(diags) == 0 {
			t.Fatalf("fabricated member accepted")
		}
	})
}

// TestVecStrictVerifyOnConstruction: a strict-mode build runs the
// SM-VEC rules (a clean design constructs; the rules are exercised by
// the mutation tests above).
func TestVecStrictVerifyOnConstruction(t *testing.T) {
	d := compileVecTest(t, replicatedSrc(4))
	if _, err := NewVecCCSS(d, VecCCSSOptions{Verify: verify.Strict}); err != nil {
		t.Fatal(err)
	}
}

// TestVecMinLanesFloor: under the default cost-model floor a fragmented
// class (fewer lanes than the floor) must fall back to the scalar path —
// and stay bit-exact with scalar CCSS while doing so. MinLanes 2 must
// re-admit the same class.
func TestVecMinLanesFloor(t *testing.T) {
	d := compileVecTest(t, replicatedSrc(8))
	v, err := NewVecCCSS(d, VecCCSSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := v.VecInfo()
	if st.MinLanes != defaultMinVecLanes {
		t.Fatalf("default floor not applied: %+v", st)
	}
	if st.Groups != 0 || st.DroppedGroups == 0 || st.DroppedParts < 2 {
		t.Fatalf("fragmented class not dropped by the floor: %+v", st)
	}
	ref, err := NewCCSS(d, CCSSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stepCompare(t, ref, v, d, 11, 150)
	if rs, vs := *ref.Stats(), *v.Stats(); rs != vs {
		t.Fatalf("stats diverged:\nref: %+v\nvec: %+v", rs, vs)
	}

	accept, err := NewVecCCSS(d, VecCCSSOptions{MinLanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ast := accept.VecInfo(); ast.Groups == 0 || ast.DroppedGroups != 0 {
		t.Fatalf("MinLanes 2 did not re-admit the class: %+v", ast)
	}
}

// TestVecGuardSignatures: the replicated accumulator bank shares one
// global enable, so the partitions carry a static toggle-condition
// signature, the compiled class is signature-homogeneous, and the NoSA
// ablation compiles the same lanes and stays bit-exact.
func TestVecGuardSignatures(t *testing.T) {
	d := compileVecTest(t, replicatedSrc(8))
	v, err := NewVecCCSS(d, VecCCSSOptions{MinLanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := v.VecInfo()
	if st.Groups == 0 {
		t.Fatalf("no classes found: %+v", st)
	}
	if st.GatedParts == 0 || st.SharedGuardGroups == 0 {
		t.Fatalf("shared global enable not reflected in signatures: %+v", st)
	}
	ab, err := NewVecCCSS(d, VecCCSSOptions{MinLanes: 2, NoSA: true})
	if err != nil {
		t.Fatal(err)
	}
	ast := ab.VecInfo()
	if ast.GatedParts != 0 || ast.SharedGuardGroups != 0 {
		t.Fatalf("NoSA still computed signatures: %+v", ast)
	}
	if ast.Groups != st.Groups || ast.VecParts != st.VecParts {
		t.Fatalf("ablation changed class coverage: sa %+v vs nosa %+v", st, ast)
	}
	stepCompare(t, v, ab, d, 23, 150)
	if rs, vs := *v.Stats(), *ab.Stats(); rs != vs {
		t.Fatalf("stats diverged:\nsa: %+v\nnosa: %+v", rs, vs)
	}
}
