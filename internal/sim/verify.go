package sim

import (
	"fmt"

	"essent/internal/bits"
	"essent/internal/netlist"
	"essent/internal/sched"
	"essent/internal/verify"
)

// Machine-schedule verification (the SM-* rules of DESIGN.md §9): the
// last static-analysis layer, run on the compiled instruction stream
// after value-table layout, mux-way expansion, and superinstruction
// fusion have all happened. Where the plan verifier reasons about
// partitions and signals, this layer reasons about the artifacts the
// interpreter actually executes — word offsets, schedule entries, skip
// spans — so a bug in any lowering step (not just planning) is caught
// before the first cycle runs.
//
//	SM-SKIP    skip spans are in-bounds, forward, and well-nested
//	SM-DEFUSE  every operand word is a source slot or written earlier in
//	           its group, in a guard region enclosing the reader (with
//	           the mux-way exception: a mux may read each way out of the
//	           arm region guarded by its own selector); engine-read
//	           slots (partition outputs) are written unconditionally
//	SM-ELIDE   an in-place register write never precedes a reader of
//	           the old value in the global schedule
//	SM-ALIAS   each table word has at most one writing instruction, and
//	           partitions sharing a parallel level spec touch disjoint
//	           written words
//	SM-SINK    side-effect entries (display/check/memwrite) never sit
//	           inside a skip region
//
// verifyMachine is pure analysis: it never executes an instruction and
// never mutates the machine.
func verifyMachine(m *machine, ranges [][2]int32, plan *sched.CCSSPlan,
	keepLive []netlist.SignalID) []verify.Diagnostic {
	c := &smChecker{m: m, plan: plan}
	if ranges == nil {
		ranges = [][2]int32{{0, int32(len(m.sched))}}
	}
	c.ranges = ranges
	c.markSources()
	c.checkWriters()
	for gi := range ranges {
		c.walkGroup(gi)
	}
	c.checkKeepLive(keepLive)
	c.checkElide()
	c.checkParallelAlias()
	return c.diags
}

type smChecker struct {
	m      *machine
	plan   *sched.CCSSPlan
	ranges [][2]int32
	diags  []verify.Diagnostic

	// source marks table words defined before the schedule runs: inputs,
	// register storage (elided next aliases it), and the constant pool.
	source []bool
	// writerInstr maps each table word to the instruction writing it
	// (-1 none); writerGroup to that instruction's group.
	writerInstr []int32
	writerGroup []int32
	// uncond marks words with a region-free (unconditional) write.
	uncond []bool
	// Per-word group-walk write records, epoch-stamped so the slices are
	// allocated once instead of one map per group (the walk is on every
	// engine's compile path and must stay cheap).
	wrEpoch  []int32
	wrRegion []*smRegion
	epoch    int32
}

func (c *smChecker) errf(rule, loc, hint, format string, args ...any) {
	c.diags = append(c.diags, verify.Diagnostic{
		Rule: rule, Sev: verify.SevError, Loc: loc,
		Msg: fmt.Sprintf(format, args...), Hint: hint,
	})
}

func (c *smChecker) sigName(id netlist.SignalID) string {
	return c.m.d.Signals[id].Name
}

// instrLoc renders an instruction site using its output signal name.
func (c *smChecker) instrLoc(in *instr) string {
	return fmt.Sprintf("instr for %q", c.sigName(in.out))
}

func (c *smChecker) markSources() {
	m := c.m
	c.source = make([]bool, len(m.t))
	mark := func(off, words int32) {
		for w := int32(0); w < words; w++ {
			c.source[off+w] = true
		}
	}
	for _, in := range m.d.Inputs {
		mark(m.off[in], m.nw[in])
	}
	for i := range m.d.Signals {
		if m.d.Signals[i].Kind == netlist.KRegOut {
			mark(m.off[i], m.nw[i])
		}
	}
	for i := range m.d.Consts {
		mark(m.constOff[i], int32(bits.Words(m.d.Consts[i].Width)))
	}
}

// writeSpan returns an instruction's destination word span.
func writeSpan(in *instr) (int32, int32) {
	return in.dst, int32(bits.Words(int(in.dw)))
}

// readSpans appends the (offset, words) table spans an instruction
// reads. Fused superinstructions are all narrow, so their operands are
// single words; IFCmpMux additionally reuses mem as its false-way table
// offset.
func readSpans(in *instr, dst [][2]int32) [][2]int32 {
	switch in.code {
	case IFCmpMux:
		return append(dst, [2]int32{in.a, 1}, [2]int32{in.b, 1},
			[2]int32{in.c, 1}, [2]int32{in.mem, 1})
	case IFNotAnd, IFAddTail, IFSubTail:
		return append(dst, [2]int32{in.a, 1}, [2]int32{in.b, 1})
	case IMemRead:
		return append(dst, [2]int32{in.a, int32(bits.Words(int(in.aw)))})
	}
	if in.a >= 0 {
		dst = append(dst, [2]int32{in.a, int32(bits.Words(int(in.aw)))})
	}
	if in.b >= 0 {
		dst = append(dst, [2]int32{in.b, int32(bits.Words(int(in.bw)))})
	}
	if in.c >= 0 {
		dst = append(dst, [2]int32{in.c, int32(bits.Words(int(in.cw)))})
	}
	return dst
}

// sinkOperands appends the compiled operand spans of a sink entry.
func (c *smChecker) sinkOperands(e *schedEntry, dst []operand) []operand {
	switch e.kind {
	case seMemWrite:
		w := &c.m.memWrites[e.idx]
		return append(dst, w.addr, w.en, w.data, w.mask)
	case seDisplay:
		dp := &c.m.displays[e.idx]
		dst = append(dst, dp.en)
		return append(dst, dp.args...)
	case seCheck:
		ck := &c.m.checks[e.idx]
		return append(dst, ck.en, ck.pred)
	}
	return dst
}

// schedInstr returns the index of the instruction a schedule entry
// executes (-1 if none): seInstr and the fused skips, without bounds
// assumptions.
func (c *smChecker) schedInstr(e *schedEntry) int32 {
	switch e.kind {
	case seInstr, seSkipIfZeroF, seSkipIfNonzeroF:
		if e.idx >= 0 && int(e.idx) < len(c.m.instrs) {
			return e.idx
		}
	}
	return -1
}

// checkWriters (SM-ALIAS, global half): every table word is written by
// at most one scheduled instruction; also records writer→group for the
// per-group def-use walk.
func (c *smChecker) checkWriters() {
	m := c.m
	c.writerInstr = make([]int32, len(m.t))
	c.writerGroup = make([]int32, len(m.t))
	for i := range c.writerInstr {
		c.writerInstr[i] = -1
		c.writerGroup[i] = -1
	}
	for gi, r := range c.ranges {
		for p := r[0]; p < r[1] && int(p) < len(m.sched); p++ {
			ii := c.schedInstr(&m.sched[p])
			if ii < 0 {
				continue
			}
			in := &m.instrs[ii]
			off, words := writeSpan(in)
			for w := int32(0); w < words; w++ {
				o := off + w
				if o < 0 || int(o) >= len(m.t) {
					c.errf("SM-ALIAS", c.instrLoc(in), "",
						"destination word %d outside the value table", o)
					continue
				}
				if prev := c.writerInstr[o]; prev >= 0 && prev != ii {
					c.errf("SM-ALIAS", c.instrLoc(in),
						"two instructions storing to one slot make the result order-dependent",
						"table word %d already written by instr for %q",
						o, c.sigName(m.instrs[prev].out))
				}
				c.writerInstr[o] = ii
				c.writerGroup[o] = int32(gi)
			}
		}
	}
}

// smRegion is one open skip span during the group walk. Regions form a
// tree: parent is the enclosing span, nil the unconditional top level.
type smRegion struct {
	guard  int32 // table offset deciding the skip
	onZero bool  // true: span skipped when guard == 0 (a true-way arm)
	end    int32 // first position after the span
	parent *smRegion
}

// prefixOf reports whether w is r or an ancestor of r (a write in w is
// visible whenever execution reaches r).
func prefixOf(w, r *smRegion) bool {
	for ; r != nil; r = r.parent {
		if r == w {
			return true
		}
	}
	return w == nil
}

// walkGroup runs the region-aware def-use walk over one schedule group:
// SM-SKIP on every skip entry, SM-DEFUSE on every operand, SM-SINK on
// every side-effect entry.
func (c *smChecker) walkGroup(gi int) {
	m := c.m
	r := c.ranges[gi]
	loc := func(p int32) string { return fmt.Sprintf("sched[%d]", p) }
	if r[0] < 0 || r[1] < r[0] || int(r[1]) > len(m.sched) {
		c.errf("SM-SKIP", fmt.Sprintf("group %d", gi), "",
			"schedule range [%d,%d) out of bounds", r[0], r[1])
		return
	}
	if c.wrEpoch == nil {
		c.wrEpoch = make([]int32, len(m.t))
		c.wrRegion = make([]*smRegion, len(m.t))
		for i := range c.wrEpoch {
			c.wrEpoch[i] = -1
		}
	}
	c.epoch = int32(gi)
	var cur *smRegion

	checkRead := func(p int32, o, words int32, reader *instr, way uint8) {
		for w := int32(0); w < words; w++ {
			ow := o + w
			if ow < 0 || int(ow) >= len(m.t) {
				c.errf("SM-DEFUSE", loc(p), "",
					"operand word %d outside the value table", ow)
				return
			}
			if c.source[ow] {
				continue
			}
			if c.wrEpoch[ow] != c.epoch {
				if c.writerGroup[ow] == int32(gi) {
					c.errf("SM-DEFUSE", loc(p),
						"schedule the producing instruction before its consumer",
						"reads word %d before its writer (instr for %q) runs",
						ow, c.sigName(m.instrs[c.writerInstr[ow]].out))
				}
				// Written by another group (cross-partition read, the
				// plan verifier's domain) or never written (stale slot
				// with no live readers left by fusion): not this walk's
				// concern.
				continue
			}
			wrRegion := c.wrRegion[ow]
			if prefixOf(wrRegion, cur) {
				continue
			}
			// Mux-way exception: a mux may read each way out of the arm
			// region guarded by its own selector — the skip guarantees
			// the way it selects was just computed.
			if reader != nil && reader.code == IMux && wrRegion != nil &&
				wrRegion.guard == reader.a && prefixOf(wrRegion.parent, cur) {
				if (way == 1 && wrRegion.onZero) || (way == 2 && !wrRegion.onZero) {
					continue
				}
			}
			c.errf("SM-DEFUSE", loc(p),
				"a conditionally-written slot may hold a stale value when its guard skipped",
				"reads word %d written under a skip guard that does not dominate the reader", ow)
		}
	}
	checkInstr := func(p int32, in *instr) {
		var spans [][2]int32
		spans = readSpans(in, spans)
		for i, s := range spans {
			way := uint8(0)
			if in.code == IMux {
				way = uint8(i) // 0:sel 1:true way 2:false way
			}
			checkRead(p, s[0], s[1], in, way)
		}
		off, words := writeSpan(in)
		for w := int32(0); w < words; w++ {
			o := off + w
			if o < 0 || int(o) >= len(m.t) {
				continue // reported by checkWriters
			}
			c.wrEpoch[o] = c.epoch
			c.wrRegion[o] = cur
			if cur == nil {
				c.uncond[o] = true
			}
		}
	}
	if c.uncond == nil {
		c.uncond = make([]bool, len(m.t))
	}

	for p := r[0]; p < r[1]; p++ {
		for cur != nil && cur.end <= p {
			cur = cur.parent
		}
		e := &m.sched[p]
		switch e.kind {
		case seInstr:
			if e.idx < 0 || int(e.idx) >= len(m.instrs) {
				c.errf("SM-SKIP", loc(p), "", "instruction index %d out of range", e.idx)
				continue
			}
			checkInstr(p, &m.instrs[e.idx])
		case seDisplay, seCheck, seMemWrite:
			if cur != nil {
				c.errf("SM-SINK", loc(p),
					"side effects must never be guarded by a mux-way skip",
					"side-effect entry inside a skip region (guard word %d)", cur.guard)
			}
			for _, o := range c.sinkOperands(e, nil) {
				checkRead(p, o.off, int32(bits.Words(int(o.w))), nil, 0)
			}
		case seSkipIfZero, seSkipIfNonzero, seSkipIfZeroF, seSkipIfNonzeroF:
			guard := e.idx
			onZero := e.kind == seSkipIfZero || e.kind == seSkipIfZeroF
			if e.kind == seSkipIfZeroF || e.kind == seSkipIfNonzeroF {
				if e.idx < 0 || int(e.idx) >= len(m.instrs) {
					c.errf("SM-SKIP", loc(p), "", "fused-skip instruction index %d out of range", e.idx)
					continue
				}
				in := &m.instrs[e.idx]
				checkInstr(p, in) // executes in the current region first
				guard = in.dst
			} else {
				if guard < 0 || int(guard) >= len(m.t) {
					c.errf("SM-SKIP", loc(p), "", "skip guard word %d outside the value table", guard)
					continue
				}
				checkRead(p, guard, 1, nil, 0)
			}
			if e.n < 0 {
				c.errf("SM-SKIP", loc(p), "skips must be forward", "negative skip count %d", e.n)
				continue
			}
			tgt := p + 1 + e.n
			if tgt > r[1] {
				c.errf("SM-SKIP", loc(p),
					"a skip across the group boundary would drop other partitions' work",
					"skip target %d beyond group end %d", tgt, r[1])
				continue
			}
			if cur != nil && tgt > cur.end {
				c.errf("SM-SKIP", loc(p),
					"skip spans must nest within their enclosing span",
					"skip target %d beyond enclosing span end %d", tgt, cur.end)
				continue
			}
			cur = &smRegion{guard: guard, onZero: onZero, end: tgt, parent: cur}
		default:
			c.errf("SM-SKIP", loc(p), "", "unknown schedule entry kind %d", e.kind)
		}
	}
}

// checkKeepLive (SM-DEFUSE, engine half): slots the engine reads outside
// the instruction stream — partition outputs compared for change
// detection — must be sources or unconditionally written, or a skipped
// mux way leaves the comparison reading a stale word.
func (c *smChecker) checkKeepLive(keepLive []netlist.SignalID) {
	if c.uncond == nil {
		c.uncond = make([]bool, len(c.m.t))
	}
	for _, sig := range keepLive {
		off, words := c.m.off[sig], c.m.nw[sig]
		for w := int32(0); w < words; w++ {
			if !c.source[off+w] && !c.uncond[off+w] {
				c.errf("SM-DEFUSE", fmt.Sprintf("signal %q", c.sigName(sig)),
					"change-detected outputs must be stored unconditionally",
					"engine-read slot word %d has no unconditional write", off+w)
				break
			}
		}
	}
}

// checkElide (SM-ELIDE): for every elided register, no reader of the old
// output value is scheduled after the in-place write. schedPosOf is
// fusion-remapped, and a value-fused reader only ever moves to a
// position the fusion pass proved clobber-free, so the check is exact.
func (c *smChecker) checkElide() {
	m := c.m
	if m.elided == nil {
		return
	}
	any := false
	for ri := range m.d.Regs {
		if m.elided[ri] {
			any = true
			break
		}
	}
	if !any {
		return
	}
	// Only readers of elided register outputs matter; restricting the
	// inversion to those signals keeps this pass allocation-light.
	want := make([]bool, len(m.d.Signals))
	for ri := range m.d.Regs {
		if m.elided[ri] {
			want[m.d.Regs[ri].Out] = true
		}
	}
	readersOf := buildReadersOf(m.d, m.dg, want)
	for ri := range m.d.Regs {
		if !m.elided[ri] {
			continue
		}
		r := &m.d.Regs[ri]
		wPos := m.schedPosOf[r.Next]
		if wPos < 0 {
			c.errf("SM-ELIDE", fmt.Sprintf("register %q", c.sigName(r.Out)),
				"", "elided register's next value is unscheduled")
			continue
		}
		for _, v := range readersOf[r.Out] {
			if int(v) == int(r.Next) {
				continue
			}
			if p := m.schedPosOf[v]; p > wPos {
				c.errf("SM-ELIDE", fmt.Sprintf("register %q", c.sigName(r.Out)),
					"readers of the old value must be scheduled before the in-place write",
					"reader at sched[%d] runs after the in-place write at sched[%d]", p, wPos)
			}
		}
	}
}

// buildReadersOf inverts the per-cycle data reads restricted to the
// signals marked in want: readersOf[u] lists the design-graph nodes
// reading signal u this cycle (pure data, recomputed from the design).
func buildReadersOf(d *netlist.Design, dg *netlist.DesignGraph, want []bool) [][]int32 {
	readers := make([][]int32, len(d.Signals))
	add := func(v int, a netlist.Arg) {
		if !a.IsConst() && want[a.Sig] {
			readers[a.Sig] = append(readers[a.Sig], int32(v))
		}
	}
	for i := range d.Signals {
		s := &d.Signals[i]
		switch s.Kind {
		case netlist.KComb:
			for _, a := range s.Op.Args {
				add(i, a)
			}
		case netlist.KMemRead:
			r := &d.MemReads[s.MemRead]
			add(i, r.Addr)
			add(i, r.En)
		}
	}
	for v := len(d.Signals); v < dg.G.Len(); v++ {
		switch dg.Kind[v] {
		case netlist.NodeMemWrite:
			w := &d.MemWrites[dg.Index[v]]
			add(v, w.Addr)
			add(v, w.En)
			add(v, w.Data)
			add(v, w.Mask)
		case netlist.NodeDisplay:
			dp := &d.Displays[dg.Index[v]]
			add(v, dp.En)
			for _, a := range dp.Args {
				add(v, a)
			}
		case netlist.NodeCheck:
			ck := &d.Checks[dg.Index[v]]
			add(v, ck.En)
			add(v, ck.Pred)
		}
	}
	return readers
}

// nodeReadsSignal reports whether design-graph node v reads signal sig
// this cycle (pure data, recomputed from the design).
func nodeReadsSignal(d *netlist.Design, dg *netlist.DesignGraph, v int, sig netlist.SignalID) bool {
	uses := func(a netlist.Arg) bool { return !a.IsConst() && a.Sig == sig }
	if v < len(d.Signals) {
		s := &d.Signals[v]
		switch s.Kind {
		case netlist.KComb:
			for _, a := range s.Op.Args {
				if uses(a) {
					return true
				}
			}
		case netlist.KMemRead:
			r := &d.MemReads[s.MemRead]
			return uses(r.Addr) || uses(r.En)
		}
		return false
	}
	switch dg.Kind[v] {
	case netlist.NodeMemWrite:
		w := &d.MemWrites[dg.Index[v]]
		return uses(w.Addr) || uses(w.En) || uses(w.Data) || uses(w.Mask)
	case netlist.NodeDisplay:
		dp := &d.Displays[dg.Index[v]]
		if uses(dp.En) {
			return true
		}
		for _, a := range dp.Args {
			if uses(a) {
				return true
			}
		}
	case netlist.NodeCheck:
		ck := &d.Checks[dg.Index[v]]
		return uses(ck.En) || uses(ck.Pred)
	}
	return false
}

// checkParallelAlias (SM-ALIAS, parallel half): within every parallel
// level spec, the word spans one partition writes are disjoint from the
// words every other partition of the spec reads or writes — the
// data-race precondition of the parallel and batch engines, proven on
// the final table layout.
func (c *smChecker) checkParallelAlias() {
	if c.plan == nil || len(c.ranges) != len(c.plan.Parts) {
		return
	}
	m := c.m
	for si, spec := range c.plan.LevelSpecs {
		if spec.Serial || len(spec.Parts) < 2 {
			continue
		}
		loc := fmt.Sprintf("level spec %d", si)
		writerPart := map[int32]int32{}
		for _, pi := range spec.Parts {
			r := c.ranges[pi]
			for p := r[0]; p < r[1]; p++ {
				ii := c.schedInstr(&m.sched[p])
				if ii < 0 {
					continue
				}
				off, words := writeSpan(&m.instrs[ii])
				for w := int32(0); w < words; w++ {
					o := off + w
					if prev, ok := writerPart[o]; ok && prev != int32(pi) {
						c.errf("SM-ALIAS", loc,
							"same-level partitions writing one word race under parallel evaluation",
							"partitions %d and %d both write table word %d", prev, pi, o)
					}
					writerPart[o] = int32(pi)
				}
			}
		}
		for _, pi := range spec.Parts {
			r := c.ranges[pi]
			checkSpan := func(p, off, words int32) {
				for w := int32(0); w < words; w++ {
					o := off + w
					if wp, ok := writerPart[o]; ok && wp != int32(pi) {
						c.errf("SM-ALIAS", loc,
							"a same-level read of a written word races under parallel evaluation",
							"partition %d (sched[%d]) reads table word %d written by partition %d",
							pi, p, o, wp)
					}
				}
			}
			for p := r[0]; p < r[1]; p++ {
				e := &m.sched[p]
				if ii := c.schedInstr(e); ii >= 0 {
					for _, s := range readSpans(&m.instrs[ii], nil) {
						checkSpan(p, s[0], s[1])
					}
				}
				switch e.kind {
				case seSkipIfZero, seSkipIfNonzero:
					checkSpan(p, e.idx, 1)
				case seDisplay, seCheck, seMemWrite:
					for _, o := range c.sinkOperands(e, nil) {
						checkSpan(p, o.off, int32(bits.Words(int(o.w))))
					}
				}
			}
		}
	}
}
