package sim

import (
	"testing"

	"essent/internal/bits"
	"essent/internal/firrtl"
	"essent/internal/netlist"
	"essent/internal/sched"
	"essent/internal/verify"
)

// Machine-level (SM-*) rule tests: build a real machine the way
// newCCSSFromPlan does, inject one lowering defect, and assert the rule
// guarding against it fires.

const smMultiSrc = `
circuit T :
  module T :
    input clock : Clock
    input a : UInt<8>
    input b : UInt<8>
    output o1 : UInt<8>
    output o2 : UInt<8>
    reg r1 : UInt<8>, clock
    reg r2 : UInt<8>, clock
    node s1 = tail(add(a, r1), 1)
    node s2 = tail(add(b, r2), 1)
    r1 <= s1
    r2 <= s2
    o1 <= r1
    o2 <= xor(s1, s2)
`

const smElideSrc = `
circuit T :
  module T :
    input clock : Clock
    input a : UInt<8>
    output o : UInt<8>
    reg r : UInt<8>, clock
    r <= tail(add(r, a), 1)
    o <= r
`

const smSinkSrc = `
circuit T :
  module T :
    input clock : Clock
    input en : UInt<1>
    input a : UInt<8>
    output o : UInt<8>
    reg r : UInt<8>, clock
    r <= tail(add(r, a), 1)
    o <= r
    printf(clock, en, "tick\n")
`

// buildVerifyMachine compiles src into a machine exactly like the CCSS
// constructor: partition groups, mux shadows, fusion, keep-live outputs.
func buildVerifyMachine(t *testing.T, src string, cp int) (*machine, [][2]int32,
	*sched.CCSSPlan, []netlist.SignalID) {
	t.Helper()
	c, err := firrtl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := netlist.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sched.PlanCCSS(d, cp)
	if err != nil {
		t.Fatal(err)
	}
	groups := make([][]int, len(plan.Parts))
	for pi := range plan.Parts {
		groups[pi] = plan.Parts[pi].Members
	}
	var keepLive []netlist.SignalID
	for pi := range plan.Parts {
		for _, op := range plan.Parts[pi].Outputs {
			keepLive = append(keepLive, op.Sig)
		}
	}
	m, ranges, err := newMachineCfg(d, plan.DG, plan.Order, plan.Elided,
		machineConfig{shadows: plan.Shadows, groups: groups, fuse: true,
			keepLive: keepLive})
	if err != nil {
		t.Fatal(err)
	}
	return m, ranges, plan, keepLive
}

func smHasRule(diags []verify.Diagnostic, rule string) bool {
	for _, d := range diags {
		if d.Rule == rule {
			return true
		}
	}
	return false
}

func smWantRule(t *testing.T, diags []verify.Diagnostic, rule string) {
	t.Helper()
	if !smHasRule(diags, rule) {
		t.Fatalf("want a %s diagnostic, got:\n%s", rule, verify.Format(diags))
	}
}

// sourceWords replicates markSources for test-side dependency hunting.
func sourceWords(m *machine) []bool {
	src := make([]bool, len(m.t))
	mark := func(off, words int32) {
		for w := int32(0); w < words; w++ {
			src[off+w] = true
		}
	}
	for _, in := range m.d.Inputs {
		mark(m.off[in], m.nw[in])
	}
	for i := range m.d.Signals {
		if m.d.Signals[i].Kind == netlist.KRegOut {
			mark(m.off[i], m.nw[i])
		}
	}
	for i := range m.d.Consts {
		mark(m.constOff[i], int32(bits.Words(m.d.Consts[i].Width)))
	}
	return src
}

func TestVerifyMachineClean(t *testing.T) {
	for _, src := range []string{smMultiSrc, smElideSrc, smSinkSrc} {
		for _, cp := range []int{1, 8, 1 << 20} {
			m, ranges, plan, keepLive := buildVerifyMachine(t, src, cp)
			if diags := verifyMachine(m, ranges, plan, keepLive); len(diags) != 0 {
				t.Fatalf("cp=%d: clean machine produced findings:\n%s",
					cp, verify.Format(diags))
			}
		}
	}
}

func TestSMAliasDoubleWriter(t *testing.T) {
	m, ranges, plan, keepLive := buildVerifyMachine(t, smMultiSrc, 1<<20)
	// Point one instruction's store at another's slot.
	var scheduled []int32
	for _, e := range m.sched {
		if e.kind == seInstr || e.kind == seSkipIfZeroF || e.kind == seSkipIfNonzeroF {
			scheduled = append(scheduled, e.idx)
		}
	}
	if len(scheduled) < 2 {
		t.Fatal("need two scheduled instructions")
	}
	m.instrs[scheduled[1]].dst = m.instrs[scheduled[0]].dst
	smWantRule(t, verifyMachine(m, ranges, plan, keepLive), "SM-ALIAS")
}

func TestSMDefUseSwap(t *testing.T) {
	m, ranges, plan, keepLive := buildVerifyMachine(t, smMultiSrc, 1<<20)
	src := sourceWords(m)
	// Find schedule positions p < q in one group where q's instruction
	// reads a non-source word p's instruction writes, then swap them.
	for gi, r := range ranges {
		_ = gi
		for p := r[0]; p < r[1]; p++ {
			if m.sched[p].kind != seInstr {
				continue
			}
			wIn := &m.instrs[m.sched[p].idx]
			off, words := writeSpan(wIn)
			for q := p + 1; q < r[1]; q++ {
				if m.sched[q].kind != seInstr {
					continue
				}
				for _, s := range readSpans(&m.instrs[m.sched[q].idx], nil) {
					for w := int32(0); w < s[1]; w++ {
						o := s[0] + w
						if o >= off && o < off+words && !src[o] {
							m.sched[p], m.sched[q] = m.sched[q], m.sched[p]
							smWantRule(t, verifyMachine(m, ranges, plan, keepLive),
								"SM-DEFUSE")
							return
						}
					}
				}
			}
		}
	}
	t.Fatal("no dependent instruction pair found")
}

func TestSMSkipCorrupted(t *testing.T) {
	m, ranges, plan, keepLive := buildVerifyMachine(t, smMultiSrc, 1<<20)
	guard := m.off[m.d.Inputs[0]]
	// A backward skip is never legal.
	m.sched = append(m.sched, schedEntry{kind: seSkipIfZero, idx: guard, n: -1})
	smWantRule(t, verifyMachine(m, nil, plan, keepLive), "SM-SKIP")

	// A skip past the end of its group drops other partitions' work.
	m.sched[len(m.sched)-1] = schedEntry{kind: seSkipIfZero, idx: guard, n: 99999}
	smWantRule(t, verifyMachine(m, nil, plan, keepLive), "SM-SKIP")
	_ = ranges
}

func TestSMSinkInsideSkip(t *testing.T) {
	m, _, plan, keepLive := buildVerifyMachine(t, smSinkSrc, 1<<20)
	guard := m.off[m.d.Inputs[0]]
	for p, e := range m.sched {
		if e.kind != seDisplay {
			continue
		}
		// Hoist the sink behind a guard: the exact transformation the
		// activity optimizer must never apply to a side effect.
		mut := make([]schedEntry, 0, len(m.sched)+1)
		mut = append(mut, m.sched[:p]...)
		mut = append(mut, schedEntry{kind: seSkipIfZero, idx: guard, n: 1})
		mut = append(mut, m.sched[p:]...)
		m.sched = mut
		smWantRule(t, verifyMachine(m, nil, plan, keepLive), "SM-SINK")
		return
	}
	t.Fatal("no display entry scheduled")
}

func TestSMElideOvertake(t *testing.T) {
	m, ranges, plan, keepLive := buildVerifyMachine(t, smElideSrc, 1<<20)
	if m.elided == nil || !m.elided[0] {
		t.Fatal("expected the register to be elided")
	}
	r := &m.d.Regs[0]
	wPos := m.schedPosOf[r.Next]
	for v := 0; v < m.dg.G.Len(); v++ {
		if v == int(r.Next) || !nodeReadsSignal(m.d, m.dg, v, r.Out) {
			continue
		}
		// Claim the reader was scheduled after the in-place write.
		m.schedPosOf[v] = wPos + 1
		smWantRule(t, verifyMachine(m, ranges, plan, keepLive), "SM-ELIDE")
		return
	}
	t.Fatal("no reader of the elided register found")
}

func TestSMKeepLiveUnwritten(t *testing.T) {
	m, ranges, plan, _ := buildVerifyMachine(t, smMultiSrc, 1<<20)
	// Engine-read slots must have unconditional writes; a comb signal
	// whose store fusion eliminated does not qualify.
	src := sourceWords(m)
	written := make([]bool, len(m.t))
	for _, e := range m.sched {
		if e.kind == seInstr || e.kind == seSkipIfZeroF || e.kind == seSkipIfNonzeroF {
			off, words := writeSpan(&m.instrs[e.idx])
			for w := int32(0); w < words; w++ {
				written[off+w] = true
			}
		}
	}
	for i := range m.d.Signals {
		if m.d.Signals[i].Kind != netlist.KComb || m.off[i] < 0 {
			continue
		}
		if !src[m.off[i]] && !written[m.off[i]] {
			diags := verifyMachine(m, ranges, plan,
				[]netlist.SignalID{netlist.SignalID(i)})
			smWantRule(t, diags, "SM-DEFUSE")
			return
		}
	}
	t.Skip("fusion left no storeless signal to point at")
}
