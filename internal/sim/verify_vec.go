package sim

import (
	"fmt"

	"essent/internal/verify"
)

// SM-VEC: static verification of the instance-vectorization compilation
// (DESIGN.md §12). Runs after class detection at construction, before
// the first cycle, in the same enforcement pipeline as the SM-* machine
// rules. The verifier re-derives its facts from the compiled groups,
// the machine, and the plan — it shares no state with the builder, so a
// builder bug shows up as a rule violation instead of a miscompile.
//
//	SM-VEC-CLASS    group membership is a bijection: every member in
//	                exactly one group, ≥2 lanes, the leader is lane 0
//	                and the earliest member in schedule order
//	SM-VEC-MAP      per lane, the slot→offset map is injective and
//	                total (a collapsed pair with a write would make a
//	                later read ambiguous between old and new values)
//	SM-VEC-DEFUSE   class-program replay: every slot read is a declared
//	                boundary load or written earlier in the program;
//	                every output/store slot is written somewhere
//	SM-VEC-POS      schedule legality recomputed from the plan: every
//	                data predecessor of a member resolves before the
//	                leader's position and outside the member's group;
//	                ordering predecessors resolve before the leader or
//	                inside the group (gather-before-scatter)
//	SM-VEC-SCATTER  every member's change-detected outputs and
//	                architectural state writes (elided register
//	                storage, register next values, design outputs) are
//	                covered by the group's scatter sets
func (v *VecCCSS) verifyVec() []verify.Diagnostic {
	c := &vecChecker{v: v}
	c.checkClassBijection()
	for gi := range v.groups {
		g := &v.groups[gi]
		c.checkLaneMaps(gi, g)
		c.checkDefUse(gi, g)
		c.checkScatter(gi, g)
	}
	c.checkPositions()
	return c.diags
}

type vecChecker struct {
	v     *VecCCSS
	diags []verify.Diagnostic
}

func (c *vecChecker) errf(rule, loc, hint, format string, args ...any) {
	c.diags = append(c.diags, verify.Diagnostic{
		Rule: rule, Sev: verify.SevError, Loc: loc,
		Msg: fmt.Sprintf(format, args...), Hint: hint,
	})
}

func (c *vecChecker) groupLoc(gi int) string {
	return fmt.Sprintf("vec class %d (leader partition %d)",
		gi, c.v.groups[gi].parts[0])
}

func (c *vecChecker) checkClassBijection() {
	v := c.v
	seen := make(map[int32]int)
	for gi := range v.groups {
		g := &v.groups[gi]
		if len(g.parts) < 2 {
			c.errf("SM-VEC-CLASS", c.groupLoc(gi),
				"classes need at least two instances to vectorize",
				"group has %d member(s)", len(g.parts))
		}
		if g.lanes != len(g.parts) {
			c.errf("SM-VEC-CLASS", c.groupLoc(gi),
				"lane count must equal the member count",
				"lanes=%d members=%d", g.lanes, len(g.parts))
		}
		for li, p := range g.parts {
			if int(p) < 0 || int(p) >= len(v.parts) {
				c.errf("SM-VEC-CLASS", c.groupLoc(gi),
					"member indices must be runtime partition IDs",
					"lane %d references partition %d", li, p)
				continue
			}
			if prev, dup := seen[p]; dup {
				c.errf("SM-VEC-CLASS", c.groupLoc(gi),
					"a partition may join at most one class",
					"partition %d already in group %d", p, prev)
			}
			seen[p] = gi
			if v.groupAt[p] != int32(gi) {
				c.errf("SM-VEC-CLASS", c.groupLoc(gi),
					"groupAt must agree with group membership",
					"partition %d: groupAt=%d", p, v.groupAt[p])
			}
			if li > 0 && p <= g.parts[0] {
				c.errf("SM-VEC-CLASS", c.groupLoc(gi),
					"the leader must be the earliest member in schedule order",
					"lane %d partition %d precedes leader %d", li, p, g.parts[0])
			}
			wantLeader := li == 0
			if v.isLeader[p] != wantLeader {
				c.errf("SM-VEC-CLASS", c.groupLoc(gi),
					"exactly lane 0 carries the leader mark",
					"partition %d isLeader=%v", p, v.isLeader[p])
			}
		}
	}
	for p, g := range v.groupAt {
		if g < 0 {
			continue
		}
		if _, ok := seen[int32(p)]; !ok {
			c.errf("SM-VEC-CLASS",
				fmt.Sprintf("partition %d", p),
				"groupAt must agree with group membership",
				"partition marked in group %d but absent from it", g)
		}
	}
}

func (c *vecChecker) checkLaneMaps(gi int, g *vecGroup) {
	if len(g.laneOff) != g.nslots*g.lanes {
		c.errf("SM-VEC-MAP", c.groupLoc(gi),
			"laneOff must be total: nslots × lanes entries",
			"have %d entries, want %d", len(g.laneOff), g.nslots*g.lanes)
		return
	}
	tlen := int32(len(c.v.machine.t))
	for l := 0; l < g.lanes; l++ {
		seen := make(map[int32]int, g.nslots)
		for s := 0; s < g.nslots; s++ {
			off := g.laneOff[s*g.lanes+l]
			if off < 0 || off >= tlen {
				c.errf("SM-VEC-MAP", c.groupLoc(gi),
					"slot offsets must index the value table",
					"lane %d slot %d offset %d out of range", l, s, off)
				continue
			}
			if prev, dup := seen[off]; dup {
				c.errf("SM-VEC-MAP", c.groupLoc(gi),
					"two slots of one lane must not share a table word",
					"lane %d slots %d and %d both map to offset %d",
					l, prev, s, off)
			}
			seen[off] = s
		}
	}
}

// checkDefUse replays the class program over slot space. loads is the
// declared gather set; anything else read must have been written by an
// earlier program entry. Conditional writes count — a lane that skips
// the write reads its own previous value, which is exactly the scalar
// machine's stale-t semantics the persistent row buffer reproduces.
func (c *vecChecker) checkDefUse(gi int, g *vecGroup) {
	loaded := make([]bool, g.nslots)
	for _, s := range g.loads {
		if s < 0 || int(s) >= g.nslots {
			c.errf("SM-VEC-DEFUSE", c.groupLoc(gi),
				"load slots must be in range", "load slot %d of %d", s, g.nslots)
			continue
		}
		loaded[s] = true
	}
	written := make([]bool, g.nslots)
	readable := func(s int32) bool {
		return int(s) < g.nslots && s >= 0 && (loaded[s] || written[s])
	}
	var ops [4]int32
	for pi := range g.prog {
		e := &g.prog[pi]
		switch e.kind {
		case seInstr, seSkipIfZeroF, seSkipIfNonzeroF:
			if int(e.idx) >= len(g.vinstrs) {
				c.errf("SM-VEC-DEFUSE", c.groupLoc(gi),
					"instruction entries must index vinstrs",
					"entry %d: idx %d of %d", pi, e.idx, len(g.vinstrs))
				continue
			}
			in := &g.vinstrs[e.idx]
			n := readOps(in, &ops)
			for k := 0; k < n; k++ {
				if !readable(ops[k]) {
					c.errf("SM-VEC-DEFUSE", c.groupLoc(gi),
						"every read slot must be a boundary load or written earlier",
						"entry %d reads slot %d before any write", pi, ops[k])
				}
			}
			if in.dst < 0 || int(in.dst) >= g.nslots {
				c.errf("SM-VEC-DEFUSE", c.groupLoc(gi),
					"destinations must be in range",
					"entry %d writes slot %d of %d", pi, in.dst, g.nslots)
				continue
			}
			written[in.dst] = true
		case seSkipIfZero, seSkipIfNonzero:
			if !readable(e.idx) {
				c.errf("SM-VEC-DEFUSE", c.groupLoc(gi),
					"skip selectors must be a boundary load or written earlier",
					"entry %d tests slot %d before any write", pi, e.idx)
			}
		default:
			c.errf("SM-VEC-DEFUSE", c.groupLoc(gi),
				"class programs hold only instruction and skip entries",
				"entry %d has kind %d", pi, e.kind)
		}
	}
	for _, o := range g.outs {
		if int(o.slot) >= g.nslots || o.slot < 0 || !written[o.slot] {
			c.errf("SM-VEC-DEFUSE", c.groupLoc(gi),
				"output slots must be written by the class program",
				"output slot %d never written", o.slot)
		}
	}
	for _, s := range g.stores {
		if int(s) >= g.nslots || s < 0 || !written[s] {
			c.errf("SM-VEC-DEFUSE", c.groupLoc(gi),
				"store slots must be written by the class program",
				"store slot %d never written", s)
		}
	}
}

// checkPositions recomputes the legality rule from the plan's partition
// DAG (data edges from cross-partition node adjacency, ordering edges
// from elided registers' cross readers).
func (c *vecChecker) checkPositions() {
	v := c.v
	dataPreds, ordPreds := v.partPreds()
	effPos := func(x int32) int32 {
		if g := v.groupAt[x]; g >= 0 {
			return v.groups[g].parts[0]
		}
		return x
	}
	for gi := range v.groups {
		g := &v.groups[gi]
		leader := g.parts[0]
		for _, p := range g.parts[1:] {
			for _, x := range dataPreds[p] {
				if v.groupAt[x] == int32(gi) {
					c.errf("SM-VEC-POS", c.groupLoc(gi),
						"data flow inside a class would need intra-evaluation ordering",
						"member %d has data predecessor %d in the same class", p, x)
					continue
				}
				if effPos(x) >= leader {
					c.errf("SM-VEC-POS", c.groupLoc(gi),
						"every data predecessor must be final before the leader evaluates",
						"member %d: predecessor %d resolves at %d ≥ leader %d",
						p, x, effPos(x), leader)
				}
			}
			for _, x := range ordPreds[p] {
				if v.groupAt[x] == int32(gi) {
					continue // gather-before-scatter covers in-class readers
				}
				if effPos(x) >= leader {
					c.errf("SM-VEC-POS", c.groupLoc(gi),
						"elided-register readers must run before the writer's class",
						"member %d: reader %d resolves at %d ≥ leader %d",
						p, x, effPos(x), leader)
				}
			}
		}
	}
}

// checkScatter verifies coverage: per lane, the member partition's
// change-detected outputs map to out slots with the member's consumer
// list, and every architectural-state offset the member writes appears
// in the scatter image (outs ∪ stores).
func (c *vecChecker) checkScatter(gi int, g *vecGroup) {
	v := c.v
	stateOffs := v.stateOffsets()
	for l, p := range g.parts {
		scattered := make(map[int32]bool)
		for _, o := range g.outs {
			scattered[g.laneOff[int(o.slot)*g.lanes+l]] = true
		}
		for _, s := range g.stores {
			scattered[g.laneOff[int(s)*g.lanes+l]] = true
		}
		part := &v.parts[p]
		outCovered := make(map[int32][]int32, len(g.outs))
		for _, o := range g.outs {
			outCovered[g.laneOff[int(o.slot)*g.lanes+l]] = o.consumers[l]
		}
		for oi := range part.outputs {
			po := &part.outputs[oi]
			cons, ok := outCovered[po.off]
			if !ok {
				c.errf("SM-VEC-SCATTER", c.groupLoc(gi),
					"every member output needs change detection at scatter",
					"lane %d partition %d output offset %d not an out slot",
					l, p, po.off)
				continue
			}
			if len(cons) != len(po.consumers) {
				c.errf("SM-VEC-SCATTER", c.groupLoc(gi),
					"out slots must carry the member's own consumer list",
					"lane %d output offset %d: %d consumers, member has %d",
					l, po.off, len(cons), len(po.consumers))
			}
		}
		// Architectural state written by this lane must scatter. Written
		// offsets are the lane images of slots the program writes.
		written := make(map[int32]bool, g.nslots)
		for _, in := range g.vinstrs {
			written[g.laneOff[int(in.dst)*g.lanes+l]] = true
		}
		for off := range written {
			if stateOffs[off] && !scattered[off] {
				c.errf("SM-VEC-SCATTER", c.groupLoc(gi),
					"state the class writes must reach the value table",
					"lane %d partition %d writes state offset %d without scatter",
					l, p, off)
			}
		}
		// Non-elided registers the member owns must be marked dirty.
		if l >= len(g.regs) || len(g.regs[l]) != len(part.regs) {
			c.errf("SM-VEC-SCATTER", c.groupLoc(gi),
				"each lane must carry its member's dirty-register list",
				"lane %d partition %d: reg list mismatch", l, p)
		}
	}
}
