// Package vcd writes Value Change Dump waveforms. VCD's format itself
// exploits low activity factors (§II): a signal is recorded only on the
// cycles where its value changes, so dump size is activity-proportional.
package vcd

import (
	"fmt"
	"io"
	"strings"

	"essent/internal/bits"
	"essent/internal/netlist"
	"essent/internal/sim"
)

// Writer incrementally dumps selected signals of a running simulation.
type Writer struct {
	w       io.Writer
	s       sim.Simulator
	ids     []netlist.SignalID
	codes   []string
	prev    [][]uint64
	cur     []uint64
	started bool
	time    uint64
}

// New creates a VCD writer for the named signals (all outputs and
// registers when names is nil).
func New(w io.Writer, s sim.Simulator, names []string) (*Writer, error) {
	d := s.Design()
	vw := &Writer{w: w, s: s}
	var ids []netlist.SignalID
	if names == nil {
		ids = append(ids, d.Outputs...)
		for ri := range d.Regs {
			ids = append(ids, d.Regs[ri].Out)
		}
	} else {
		for _, n := range names {
			id, ok := d.SignalByName(n)
			if !ok {
				return nil, fmt.Errorf("vcd: no signal %q", n)
			}
			ids = append(ids, id)
		}
	}
	vw.ids = ids
	for i, id := range ids {
		vw.codes = append(vw.codes, idCode(i))
		vw.prev = append(vw.prev, make([]uint64, bits.Words(d.Signals[id].Width)))
	}
	maxW := 1
	for _, id := range ids {
		if w := bits.Words(d.Signals[id].Width); w > maxW {
			maxW = w
		}
	}
	vw.cur = make([]uint64, maxW)
	return vw, nil
}

// idCode generates short VCD identifier codes (printable ASCII).
func idCode(i int) string {
	const chars = 94
	var b []byte
	for {
		b = append(b, byte('!'+i%chars))
		i /= chars
		if i == 0 {
			break
		}
		i--
	}
	return string(b)
}

// Header emits the declaration section.
func (vw *Writer) Header(design string) error {
	d := vw.s.Design()
	var b strings.Builder
	b.WriteString("$date\n  (essent-go)\n$end\n")
	b.WriteString("$timescale 1ns $end\n")
	fmt.Fprintf(&b, "$scope module %s $end\n", design)
	for i, id := range vw.ids {
		s := &d.Signals[id]
		name := strings.NewReplacer(".", "_", "$", "_").Replace(s.Name)
		fmt.Fprintf(&b, "$var wire %d %s %s $end\n", s.Width, vw.codes[i], name)
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")
	_, err := io.WriteString(vw.w, b.String())
	return err
}

// Sample records the current cycle, emitting only changed signals.
func (vw *Writer) Sample() error {
	d := vw.s.Design()
	var b strings.Builder
	wroteTime := false
	for i, id := range vw.ids {
		w := d.Signals[id].Width
		cur := vw.cur[:bits.Words(w)]
		vw.s.PeekWide(id, cur)
		if vw.started && bits.Equal(cur, vw.prev[i]) {
			continue
		}
		if !wroteTime {
			fmt.Fprintf(&b, "#%d\n", vw.time)
			wroteTime = true
		}
		copy(vw.prev[i], cur)
		if w == 1 {
			fmt.Fprintf(&b, "%d%s\n", cur[0]&1, vw.codes[i])
		} else {
			fmt.Fprintf(&b, "b%s %s\n", binStr(cur, w), vw.codes[i])
		}
	}
	vw.started = true
	vw.time++
	_, err := io.WriteString(vw.w, b.String())
	return err
}

func binStr(words []uint64, width int) string {
	var b strings.Builder
	started := false
	for i := width - 1; i >= 0; i-- {
		bit := bits.Bit(words, i)
		if bit == 1 {
			started = true
		}
		if started || i == 0 {
			b.WriteByte('0' + byte(bit))
		}
	}
	return b.String()
}

// Run steps the simulation n cycles, sampling after each.
func (vw *Writer) Run(n int) error {
	for i := 0; i < n; i++ {
		stepErr := vw.s.Step(1)
		if err := vw.Sample(); err != nil {
			return err
		}
		if stepErr != nil {
			return stepErr
		}
	}
	return nil
}
