package vcd

import (
	"strings"
	"testing"

	"essent/internal/firrtl"
	"essent/internal/netlist"
	"essent/internal/sim"
)

const counterSrc = `
circuit C :
  module C :
    input clock : Clock
    input en : UInt<1>
    output o : UInt<4>
    reg r : UInt<4>, clock
    when en :
      r <= tail(add(r, UInt<4>(1)), 1)
    o <= r
`

func buildSim(t *testing.T) sim.Simulator {
	t.Helper()
	c, err := firrtl.Parse(counterSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := netlist.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d, sim.Options{Engine: sim.EngineFullCycle})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestVCDOutput(t *testing.T) {
	s := buildSim(t)
	var buf strings.Builder
	vw, err := New(&buf, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := vw.Header("C"); err != nil {
		t.Fatal(err)
	}
	en, _ := s.Design().SignalByName("en")
	s.Poke(en, 1)
	if err := vw.Run(8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"$enddefinitions", "$var wire 4", "#0", "#5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in VCD:\n%s", want, out)
		}
	}
}

// Inactivity compression: with en low, later cycles emit nothing.
func TestVCDSkipsQuietCycles(t *testing.T) {
	s := buildSim(t)
	var buf strings.Builder
	vw, err := New(&buf, s, []string{"o", "r"})
	if err != nil {
		t.Fatal(err)
	}
	if err := vw.Header("C"); err != nil {
		t.Fatal(err)
	}
	// en stays 0: r never changes; only cycle 0 dumps initial values.
	if err := vw.Run(20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#0") {
		t.Fatal("initial dump missing")
	}
	if strings.Contains(out, "#5") || strings.Contains(out, "#19") {
		t.Fatalf("quiet cycles should not be dumped:\n%s", out)
	}
}

func TestVCDUnknownSignal(t *testing.T) {
	s := buildSim(t)
	var buf strings.Builder
	if _, err := New(&buf, s, []string{"nope"}); err == nil {
		t.Fatal("expected error for unknown signal")
	}
}

func TestIDCodes(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		c := idCode(i)
		if seen[c] {
			t.Fatalf("duplicate code %q at %d", c, i)
		}
		seen[c] = true
	}
}
