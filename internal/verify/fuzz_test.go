package verify_test

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"essent/internal/netlist"
	"essent/internal/opt"
	"essent/internal/randckt"
	"essent/internal/sched"
	"essent/internal/sim"
	"essent/internal/verify"
)

// fuzzIters resolves the iteration budget: VERIFY_FUZZ_N in the
// environment (CI smoke sets 200), a modest default otherwise.
func fuzzIters(t *testing.T) int {
	if s := os.Getenv("VERIFY_FUZZ_N"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad VERIFY_FUZZ_N %q: %v", s, err)
		}
		return n
	}
	if testing.Short() {
		return 10
	}
	return 40
}

var fuzzCfgs = []randckt.Config{
	randckt.DefaultConfig(),
	{Nodes: 20, Regs: 3, Inputs: 2, Outputs: 2, MaxWidth: 16},
	{Nodes: 40, Regs: 6, Inputs: 3, Outputs: 3, MaxWidth: 128, Signed: true},
	{Nodes: 80, Regs: 10, Inputs: 4, Outputs: 4, MaxWidth: 40, Mem: true, Whens: true},
	{Nodes: 30, Regs: 12, Inputs: 2, Outputs: 2, MaxWidth: 8, Whens: true},
}

// TestFuzzVerifierClean is the zero-false-positive harness: random
// circuits through the whole pipeline (compile, optimize, plan, machine
// build) must verify clean at every layer, on every engine.
func TestFuzzVerifierClean(t *testing.T) {
	iters := fuzzIters(t)
	for seed := 0; seed < iters; seed++ {
		cfg := fuzzCfgs[seed%len(fuzzCfgs)]
		d, err := netlist.Compile(randckt.Generate(int64(seed), cfg))
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		if errs := verify.Errors(verify.Design(d)); len(errs) > 0 {
			t.Fatalf("seed %d: frontend netlist dirty:\n%s", seed, verify.Format(errs))
		}
		od, _, err := opt.Optimize(d)
		if err != nil {
			t.Fatalf("seed %d: optimize: %v", seed, err)
		}
		if errs := verify.Errors(verify.Design(od)); len(errs) > 0 {
			t.Fatalf("seed %d: optimized netlist dirty:\n%s", seed, verify.Format(errs))
		}
		cp := []int{1, 4, 8, 32}[seed%4]
		p, err := sched.PlanCCSS(od, cp)
		if err != nil {
			t.Fatalf("seed %d: plan: %v", seed, err)
		}
		if errs := verify.Errors(verify.Plan(p)); len(errs) > 0 {
			t.Fatalf("seed %d cp=%d: plan dirty:\n%s", seed, cp, verify.Format(errs))
		}
		// Engine constructors run the machine-level (SM) checks in strict
		// mode by default; a construction error is a verifier finding.
		engine := []sim.Engine{sim.EngineCCSS, sim.EngineCCSSParallel,
			sim.EngineFullCycle, sim.EngineFullCycleOpt}[seed%4]
		if _, err := sim.New(od, sim.Options{Engine: engine, Cp: cp}); err != nil {
			t.Fatalf("seed %d cp=%d engine=%v: %v", seed, cp, engine, err)
		}
	}
}

// TestFuzzMutationsCaught is the zero-false-negative half: random plans
// with a deliberately injected defect (a dropped wake edge, a swapped
// producer/consumer pair) must always be rejected.
func TestFuzzMutationsCaught(t *testing.T) {
	iters := fuzzIters(t)
	caughtWake, caughtSwap := 0, 0
	for seed := 0; seed < iters; seed++ {
		cfg := fuzzCfgs[seed%len(fuzzCfgs)]
		d, err := netlist.Compile(randckt.Generate(int64(seed), cfg))
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		rng := rand.New(rand.NewSource(int64(seed)))

		// Drop one wake edge at random.
		p, err := sched.PlanCCSS(d, 2)
		if err != nil {
			t.Fatalf("seed %d: plan: %v", seed, err)
		}
		if ri, ok := pickNonEmpty(rng, len(p.RegReaderParts), func(i int) int {
			return len(p.RegReaderParts[i])
		}); ok {
			p.RegReaderParts[ri] = nil
			if !hasRule(verify.Plan(p), "PL-WAKE") {
				t.Fatalf("seed %d: dropped reg wake edge not caught", seed)
			}
			caughtWake++
		}

		// Swap a dependent pair inside one partition.
		p, err = sched.PlanCCSS(d, 1<<20) // single partition
		if err != nil {
			t.Fatalf("seed %d: plan: %v", seed, err)
		}
		if pi, i, j, ok := findDependentPair(d, p); ok {
			swapMembers(p, pi, i, j)
			diags := verify.Plan(p)
			if !hasRule(diags, "PL-DEFUSE") && !hasRule(diags, "PL-ELIDE") {
				t.Fatalf("seed %d: swapped dependent pair not caught", seed)
			}
			caughtSwap++
		}
	}
	if caughtWake == 0 || caughtSwap == 0 {
		t.Fatalf("mutation fuzz exercised nothing (wake=%d swap=%d)", caughtWake, caughtSwap)
	}
}

// pickNonEmpty selects a random index i < n with size(i) > 0.
func pickNonEmpty(rng *rand.Rand, n int, size func(int) int) (int, bool) {
	var cand []int
	for i := 0; i < n; i++ {
		if size(i) > 0 {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return 0, false
	}
	return cand[rng.Intn(len(cand))], true
}

// findDependentPair locates members i < j of one partition where j's node
// reads i's signal this cycle.
func findDependentPair(d *netlist.Design, p *sched.CCSSPlan) (pi, i, j int, ok bool) {
	for pi := range p.Parts {
		pos := map[int]int{}
		for i, m := range p.Parts[pi].Members {
			pos[m] = i
		}
		for j, m := range p.Parts[pi].Members {
			if m >= len(d.Signals) || d.Signals[m].Kind != netlist.KComb {
				continue
			}
			for _, a := range d.Signals[m].Op.Args {
				if a.IsConst() {
					continue
				}
				if i, here := pos[int(a.Sig)]; here && i < j {
					return pi, i, j, true
				}
			}
		}
	}
	return 0, 0, 0, false
}
