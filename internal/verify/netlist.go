package verify

import (
	"fmt"

	"essent/internal/bits"
	"essent/internal/firrtl"
	"essent/internal/firrtl/passes"
	"essent/internal/netlist"
)

// Netlist lint rules (catalogue in DESIGN.md §9):
//
//	NL-REF    every operand and cross-reference resolves; op arity matches
//	NL-DRIVE  every signal has exactly one definition (no undriven combs,
//	          no double drivers, no shared register plumbing)
//	NL-WIDTH  op result widths/signs obey the FIRRTL rules the engines'
//	          compiled masks assume; static parameters are in range
//	NL-CONST  constant-pool entries are well-formed (word count, no stray
//	          high bits — the table compare would see them)
//	NL-LOOP   the combinational graph is acyclic (readable cycle trace)
//	NL-DEAD   advisory: signals/state that cannot reach any sink
//
// Design runs the error rules; Lint adds the advisory pass.

// Design checks the structural soundness of a flat netlist. It returns
// every violation found (never stopping at the first), so one run shows
// the whole picture.
func Design(d *netlist.Design) []Diagnostic {
	c := &nlChecker{d: d}
	c.checkConsts()
	c.checkRefs()
	c.checkDrivers()
	c.checkWidths()
	c.checkLoops()
	return c.diags
}

// DesignPrePlanned is Design minus the combinational-loop pass, for
// engine constructors that also verify a schedule of the same netlist:
// the schedule's def-before-use total order (PL-DEFUSE / SM-DEFUSE)
// already proves the scheduled graph acyclic, and re-deriving the graph
// here would double the verifier's compile cost for no added coverage.
func DesignPrePlanned(d *netlist.Design) []Diagnostic {
	c := &nlChecker{d: d}
	c.checkConsts()
	c.checkRefs()
	c.checkDrivers()
	c.checkWidths()
	return c.diags
}

// Lint is Design plus the advisory dead-code pass.
func Lint(d *netlist.Design) []Diagnostic {
	c := &nlChecker{d: d}
	c.checkConsts()
	c.checkRefs()
	c.checkDrivers()
	c.checkWidths()
	c.checkLoops()
	c.checkDead()
	return c.diags
}

type nlChecker struct {
	d     *netlist.Design
	diags []Diagnostic
}

func (c *nlChecker) add(rule string, sev Severity, loc, msg, hint string) {
	c.diags = append(c.diags, Diagnostic{Rule: rule, Sev: sev, Loc: loc, Msg: msg, Hint: hint})
}

func (c *nlChecker) sigLoc(id netlist.SignalID) string {
	if int(id) < 0 || int(id) >= len(c.d.Signals) {
		return fmt.Sprintf("signal #%d", id)
	}
	return fmt.Sprintf("signal %q", c.d.Signals[id].Name)
}

// argOK validates one operand reference; it reports whether the arg can
// be dereferenced safely by later checks. loc is deferred: the lint runs
// on every compile and rendering a quoted site name per operand on the
// happy path would dominate its cost.
func (c *nlChecker) argOK(a netlist.Arg, loc func() string, what string, idx int) bool {
	if a.IsConst() {
		if a.Const >= 0 && int(a.Const) < len(c.d.Consts) {
			return true
		}
		c.add("NL-REF", SevError, loc(),
			fmt.Sprintf("%s references constant pool entry %d of %d",
				renderWhat(what, idx), a.Const, len(c.d.Consts)),
			"rebuild the constant pool or fix the pass that rewrote this operand")
		return false
	}
	if int(a.Sig) < 0 || int(a.Sig) >= len(c.d.Signals) {
		c.add("NL-REF", SevError, loc(),
			fmt.Sprintf("%s references signal #%d of %d",
				renderWhat(what, idx), a.Sig, len(c.d.Signals)),
			"a pass dropped a signal without remapping its uses")
		return false
	}
	return true
}

// renderWhat appends an operand index when one applies ("operand 2");
// idx < 0 means the role name stands alone ("addr").
func renderWhat(what string, idx int) string {
	if idx < 0 {
		return what
	}
	return fmt.Sprintf("%s %d", what, idx)
}

func (c *nlChecker) checkConsts() {
	for i, k := range c.d.Consts {
		loc := fmt.Sprintf("const #%d", i)
		if k.Width < 1 || k.Width > passes.MaxWidth {
			c.add("NL-CONST", SevError, loc,
				fmt.Sprintf("width %d outside [1, %d]", k.Width, passes.MaxWidth), "")
			continue
		}
		want := bits.Words(k.Width)
		if len(k.Words) != want {
			c.add("NL-CONST", SevError, loc,
				fmt.Sprintf("%d-bit constant stored in %d words (want %d)", k.Width, len(k.Words), want),
				"intern constants through Design.InternConst with bits.Words-sized slices")
			continue
		}
		top := k.Words[want-1]
		if rem := k.Width % 64; rem != 0 && top&^bits.Mask64(^uint64(0), rem) != 0 {
			c.add("NL-CONST", SevError, loc,
				fmt.Sprintf("bits set above declared width %d", k.Width),
				"mask constant words with bits.MaskInto before interning")
		}
	}
}

func (c *nlChecker) checkRefs() {
	d := c.d
	var curSig netlist.SignalID
	loc := func() string { return c.sigLoc(curSig) }
	for i := range d.Signals {
		curSig = netlist.SignalID(i)
		s := &d.Signals[i]
		if s.Width < 1 || s.Width > passes.MaxWidth {
			c.add("NL-REF", SevError, loc(),
				fmt.Sprintf("width %d outside [1, %d]", s.Width, passes.MaxWidth), "")
		}
		if s.Op == nil {
			continue
		}
		op := s.Op
		if op.Out != netlist.SignalID(i) {
			c.add("NL-REF", SevError, loc(),
				fmt.Sprintf("op.Out is %s, not the defining signal", c.sigLoc(op.Out)),
				"ops must write the signal that owns them")
		}
		wantArgs := -1
		switch op.Kind {
		case netlist.OCopy:
			wantArgs = 1
		case netlist.OMux:
			wantArgs = 3
		case netlist.OPrim:
			spec, ok := firrtl.PrimArity(op.Prim)
			if !ok || !primSupported(op.Prim) {
				c.add("NL-REF", SevError, loc(),
					fmt.Sprintf("primop %v is not part of the flat IR", op.Prim),
					"lower pad/cast ops to OCopy in the frontend")
			} else {
				wantArgs = spec
			}
		default:
			c.add("NL-REF", SevError, loc(), fmt.Sprintf("unknown op kind %d", op.Kind), "")
		}
		if wantArgs >= 0 && len(op.Args) != wantArgs {
			c.add("NL-REF", SevError, loc(),
				fmt.Sprintf("%d operands (want %d)", len(op.Args), wantArgs), "")
		}
		for ai, a := range op.Args {
			c.argOK(a, loc, "operand", ai)
		}
	}
	for ri := range d.Regs {
		r := &d.Regs[ri]
		for _, id := range []netlist.SignalID{r.Out, r.Next} {
			if int(id) < 0 || int(id) >= len(d.Signals) {
				c.add("NL-REF", SevError, fmt.Sprintf("reg %q", r.Name),
					fmt.Sprintf("references signal #%d of %d", id, len(d.Signals)), "")
			}
		}
	}
	for mi := range d.Mems {
		m := &d.Mems[mi]
		loc := fmt.Sprintf("mem %q", m.Name)
		if m.Depth < 1 {
			c.add("NL-REF", SevError, loc, fmt.Sprintf("depth %d", m.Depth), "")
		}
		for _, rp := range m.Readers {
			if rp < 0 || rp >= len(d.MemReads) {
				c.add("NL-REF", SevError, loc,
					fmt.Sprintf("reader index %d of %d", rp, len(d.MemReads)), "")
			} else if d.MemReads[rp].Mem != mi {
				c.add("NL-REF", SevError, loc,
					fmt.Sprintf("read port %d belongs to mem #%d", rp, d.MemReads[rp].Mem),
					"keep Mem.Readers and MemRead.Mem consistent when compacting")
			}
		}
		for _, wp := range m.Writers {
			if wp < 0 || wp >= len(d.MemWrites) {
				c.add("NL-REF", SevError, loc,
					fmt.Sprintf("writer index %d of %d", wp, len(d.MemWrites)), "")
			} else if d.MemWrites[wp].Mem != mi {
				c.add("NL-REF", SevError, loc,
					fmt.Sprintf("write port %d belongs to mem #%d", wp, d.MemWrites[wp].Mem), "")
			}
		}
	}
	sinkLoc := func(kind string, i int) func() string {
		return func() string { return fmt.Sprintf("%s #%d", kind, i) }
	}
	for i := range d.MemReads {
		r := &d.MemReads[i]
		loc := sinkLoc("memread", i)
		if r.Mem < 0 || r.Mem >= len(d.Mems) {
			c.add("NL-REF", SevError, loc(), fmt.Sprintf("mem index %d of %d", r.Mem, len(d.Mems)), "")
		}
		if int(r.Data) < 0 || int(r.Data) >= len(d.Signals) {
			c.add("NL-REF", SevError, loc(), fmt.Sprintf("data signal #%d of %d", r.Data, len(d.Signals)), "")
		}
		c.argOK(r.Addr, loc, "addr", -1)
		c.argOK(r.En, loc, "en", -1)
	}
	for i := range d.MemWrites {
		w := &d.MemWrites[i]
		loc := sinkLoc("memwrite", i)
		if w.Mem < 0 || w.Mem >= len(d.Mems) {
			c.add("NL-REF", SevError, loc(), fmt.Sprintf("mem index %d of %d", w.Mem, len(d.Mems)), "")
		}
		c.argOK(w.Addr, loc, "addr", -1)
		c.argOK(w.En, loc, "en", -1)
		c.argOK(w.Data, loc, "data", -1)
		c.argOK(w.Mask, loc, "mask", -1)
	}
	for i := range d.Displays {
		loc := sinkLoc("display", i)
		c.argOK(d.Displays[i].En, loc, "en", -1)
		for ai, a := range d.Displays[i].Args {
			c.argOK(a, loc, "arg", ai)
		}
	}
	for i := range d.Checks {
		loc := sinkLoc("check", i)
		c.argOK(d.Checks[i].En, loc, "en", -1)
		c.argOK(d.Checks[i].Pred, loc, "pred", -1)
	}
	for i, in := range d.Inputs {
		if int(in) < 0 || int(in) >= len(d.Signals) {
			c.add("NL-REF", SevError, fmt.Sprintf("inputs[%d]", i),
				fmt.Sprintf("signal #%d of %d", in, len(d.Signals)), "")
		} else if d.Signals[in].Kind != netlist.KInput {
			c.add("NL-REF", SevError, c.sigLoc(in),
				fmt.Sprintf("listed as input but kind is %v", d.Signals[in].Kind), "")
		}
	}
	for i, o := range d.Outputs {
		if int(o) < 0 || int(o) >= len(d.Signals) {
			c.add("NL-REF", SevError, fmt.Sprintf("outputs[%d]", i),
				fmt.Sprintf("signal #%d of %d", o, len(d.Signals)), "")
		} else if !d.Signals[o].IsOutput {
			c.add("NL-REF", SevError, c.sigLoc(o),
				"listed as output but IsOutput is unset", "")
		}
	}
}

// primSupported reports whether the engines can compile the primop
// (pad and the casts are lowered away by the frontend).
func primSupported(p firrtl.PrimOp) bool {
	switch p {
	case firrtl.OpPad, firrtl.OpAsUInt, firrtl.OpAsSInt,
		firrtl.OpAsClock, firrtl.OpAsAsyncReset, firrtl.OpInvalid:
		return false
	}
	return true
}

func (c *nlChecker) checkDrivers() {
	d := c.d
	// role[i] counts definition claims on signal i beyond its own Op.
	type claim struct {
		count int
		by    string
	}
	claims := make([]claim, len(d.Signals))
	claimSig := func(id netlist.SignalID, by string) {
		if int(id) < 0 || int(id) >= len(d.Signals) {
			return // NL-REF already reported
		}
		claims[id].count++
		if claims[id].count > 1 {
			c.add("NL-DRIVE", SevError, c.sigLoc(id),
				fmt.Sprintf("driven by both %s and %s", claims[id].by, by),
				"every signal must have exactly one definition")
		} else {
			claims[id].by = by
		}
	}
	for ri := range d.Regs {
		claimSig(d.Regs[ri].Out, fmt.Sprintf("reg %q", d.Regs[ri].Name))
	}
	for i := range d.MemReads {
		claimSig(d.MemReads[i].Data, fmt.Sprintf("memread #%d", i))
	}
	nextOf := map[netlist.SignalID]int{}
	for i := range d.Signals {
		s := &d.Signals[i]
		loc := func() string { return c.sigLoc(netlist.SignalID(i)) }
		switch s.Kind {
		case netlist.KComb:
			if s.Op == nil {
				c.add("NL-DRIVE", SevError, loc(), "combinational signal has no defining op",
					"connect the signal or remove it in DCE")
			}
			if claims[i].count > 0 {
				c.add("NL-DRIVE", SevError, loc(),
					fmt.Sprintf("combinational signal also driven by %s", claims[i].by), "")
			}
		case netlist.KRegOut:
			if s.Op != nil {
				c.add("NL-DRIVE", SevError, loc(), "register output also has a combinational op", "")
			}
			if s.Reg < 0 || s.Reg >= len(d.Regs) {
				c.add("NL-REF", SevError, loc(), fmt.Sprintf("reg index %d of %d", s.Reg, len(d.Regs)), "")
			} else if d.Regs[s.Reg].Out != netlist.SignalID(i) {
				c.add("NL-DRIVE", SevError, loc(),
					fmt.Sprintf("claims reg %q but that reg's Out is %s",
						d.Regs[s.Reg].Name, c.sigLoc(d.Regs[s.Reg].Out)), "")
			}
		case netlist.KMemRead:
			if s.Op != nil {
				c.add("NL-DRIVE", SevError, loc(), "memory read port also has a combinational op", "")
			}
			if s.MemRead < 0 || s.MemRead >= len(d.MemReads) {
				c.add("NL-REF", SevError, loc(),
					fmt.Sprintf("memread index %d of %d", s.MemRead, len(d.MemReads)), "")
			} else if d.MemReads[s.MemRead].Data != netlist.SignalID(i) {
				c.add("NL-DRIVE", SevError, loc(), "memread back-reference mismatch", "")
			}
		case netlist.KInput:
			if s.Op != nil {
				c.add("NL-DRIVE", SevError, loc(), "input port also has a combinational op", "")
			}
			if claims[i].count > 0 {
				c.add("NL-DRIVE", SevError, loc(),
					fmt.Sprintf("input port also driven by %s", claims[i].by), "")
			}
		}
	}
	// Register next-value plumbing: the engines alias an elided register's
	// next slot onto its storage, so next signals must be unshared,
	// combinational, and distinct from the output.
	for ri := range d.Regs {
		r := &d.Regs[ri]
		loc := func() string { return fmt.Sprintf("reg %q", r.Name) }
		if int(r.Next) < 0 || int(r.Next) >= len(d.Signals) {
			continue // NL-REF reported
		}
		if r.Next == r.Out {
			c.add("NL-DRIVE", SevError, loc(),
				"next value is the register output itself (combinational feedback)",
				"route the next value through a combinational signal")
			continue
		}
		if prev, dup := nextOf[r.Next]; dup {
			c.add("NL-DRIVE", SevError, loc(),
				fmt.Sprintf("shares next-value signal %s with reg %q",
					c.sigLoc(r.Next), d.Regs[prev].Name),
				"elided-register storage aliasing requires a private next signal per register")
		} else {
			nextOf[r.Next] = ri
		}
		if d.Signals[r.Next].Kind != netlist.KComb {
			c.add("NL-DRIVE", SevError, loc(),
				fmt.Sprintf("next value %s has kind %v (want comb)",
					c.sigLoc(r.Next), d.Signals[r.Next].Kind), "")
		}
	}
}

// checkWidths verifies that every op's declared result width and sign
// match the FIRRTL result rules on its operand widths — the contract
// finishInstr's precomputed masks and the width-specialized dispatch
// assume. Malformed references are skipped (NL-REF covers them).
func (c *nlChecker) checkWidths() {
	d := c.d
	for i := range d.Signals {
		s := &d.Signals[i]
		if s.Kind == netlist.KMemRead && s.MemRead >= 0 && s.MemRead < len(d.MemReads) {
			r := &d.MemReads[s.MemRead]
			if r.Mem >= 0 && r.Mem < len(d.Mems) && s.Width != d.Mems[r.Mem].Width {
				c.add("NL-WIDTH", SevError, c.sigLoc(netlist.SignalID(i)),
					fmt.Sprintf("read-port width %d != mem %q width %d",
						s.Width, d.Mems[r.Mem].Name, d.Mems[r.Mem].Width), "")
			}
			if aw, ok := c.opWidth(r.Addr); ok && aw > 32 {
				c.add("NL-WIDTH", SevError, c.sigLoc(netlist.SignalID(i)),
					fmt.Sprintf("read address %d bits wide (engine limit 32)", aw), "")
			}
			continue
		}
		if s.Kind != netlist.KComb || s.Op == nil {
			continue
		}
		c.checkOpWidth(netlist.SignalID(i), s)
	}
	for ri := range d.Regs {
		r := &d.Regs[ri]
		if int(r.Out) < 0 || int(r.Out) >= len(d.Signals) ||
			int(r.Next) < 0 || int(r.Next) >= len(d.Signals) {
			continue
		}
		o, n := &d.Signals[r.Out], &d.Signals[r.Next]
		if o.Width != n.Width || o.Signed != n.Signed {
			c.add("NL-WIDTH", SevError, fmt.Sprintf("reg %q", r.Name),
				fmt.Sprintf("out is %s but next is %s", typeStr(o.Width, o.Signed), typeStr(n.Width, n.Signed)),
				"the two-phase commit copies next over out word for word")
		}
		if len(r.Init) > bits.Words(o.Width) {
			c.add("NL-WIDTH", SevError, fmt.Sprintf("reg %q", r.Name),
				fmt.Sprintf("init value has %d words for a %d-bit register", len(r.Init), o.Width), "")
		}
	}
	for wi := range d.MemWrites {
		w := &d.MemWrites[wi]
		if w.Mem < 0 || w.Mem >= len(d.Mems) {
			continue
		}
		loc := fmt.Sprintf("memwrite #%d", wi)
		if dw, ok := c.opWidth(w.Data); ok && dw != d.Mems[w.Mem].Width {
			c.add("NL-WIDTH", SevError, loc,
				fmt.Sprintf("data width %d != mem %q width %d", dw, d.Mems[w.Mem].Name, d.Mems[w.Mem].Width), "")
		}
		if aw, ok := c.opWidth(w.Addr); ok && aw > 32 {
			c.add("NL-WIDTH", SevError, loc,
				fmt.Sprintf("write address %d bits wide (engine limit 32)", aw), "")
		}
	}
}

func typeStr(w int, signed bool) string {
	if signed {
		return fmt.Sprintf("SInt<%d>", w)
	}
	return fmt.Sprintf("UInt<%d>", w)
}

// opWidth resolves an operand's width, reporting false for operands
// NL-REF already rejected.
func (c *nlChecker) opWidth(a netlist.Arg) (int, bool) {
	if a.IsConst() {
		if a.Const < 0 || int(a.Const) >= len(c.d.Consts) {
			return 0, false
		}
		return c.d.Consts[a.Const].Width, true
	}
	if int(a.Sig) < 0 || int(a.Sig) >= len(c.d.Signals) {
		return 0, false
	}
	return c.d.Signals[a.Sig].Width, true
}

func (c *nlChecker) opType(a netlist.Arg) (int, bool, bool) {
	if a.IsConst() {
		if a.Const < 0 || int(a.Const) >= len(c.d.Consts) {
			return 0, false, false
		}
		k := c.d.Consts[a.Const]
		return k.Width, k.Signed, true
	}
	if int(a.Sig) < 0 || int(a.Sig) >= len(c.d.Signals) {
		return 0, false, false
	}
	s := c.d.Signals[a.Sig]
	return s.Width, s.Signed, true
}

func (c *nlChecker) checkOpWidth(id netlist.SignalID, s *netlist.Signal) {
	op := s.Op
	bad := func(msg, hint string) { c.add("NL-WIDTH", SevError, c.sigLoc(id), msg, hint) }
	want := func(w int, signed bool, why string) {
		if s.Width != w || s.Signed != signed {
			bad(fmt.Sprintf("declared %s but %s yields %s",
				typeStr(s.Width, s.Signed), why, typeStr(w, signed)),
				"re-run width inference after rewriting ops")
		}
	}
	switch op.Kind {
	case netlist.OCopy:
		// ICopy extends or truncates to the destination; any widths are
		// legal. Nothing to check.
		return
	case netlist.OMux:
		if len(op.Args) != 3 {
			return // NL-REF reported
		}
		wt, _, okT := c.opType(op.Args[1])
		wf, _, okF := c.opType(op.Args[2])
		if !okT || !okF {
			return
		}
		if m := max(wt, wf); m != s.Width {
			bad(fmt.Sprintf("declared width %d but arm widths are %d/%d (mux yields %d)",
				s.Width, wt, wf, m),
				"wrap narrowed arms in an explicit OCopy extension")
		}
		if ws, _, ok := c.opType(op.Args[0]); ok && ws != 1 {
			c.add("NL-WIDTH", SevWarn, c.sigLoc(id),
				fmt.Sprintf("mux selector is %d bits wide; engines test it against zero", ws), "")
		}
		return
	}
	// OPrim. Arity/kind problems are NL-REF's job; bail out quietly here.
	spec, ok := firrtl.PrimArity(op.Prim)
	if !ok || !primSupported(op.Prim) || len(op.Args) != spec {
		return
	}
	var w [2]int
	var sg [2]bool
	for i := range op.Args {
		wi, si, ok := c.opType(op.Args[i])
		if !ok {
			return
		}
		w[i], sg[i] = wi, si
	}
	sameSign := func() bool {
		if sg[0] != sg[1] {
			bad(fmt.Sprintf("%v mixes %s and %s operands", op.Prim,
				typeStr(w[0], sg[0]), typeStr(w[1], sg[1])),
				"insert explicit casts; the signed dispatch extends both operands the same way")
			return false
		}
		return true
	}
	switch op.Prim {
	case firrtl.OpAdd, firrtl.OpSub:
		if sameSign() {
			want(max(w[0], w[1])+1, sg[0], op.Prim.String())
		}
	case firrtl.OpMul:
		if sameSign() {
			want(w[0]+w[1], sg[0], "mul")
		}
	case firrtl.OpDiv:
		if sameSign() {
			wd := w[0]
			if sg[0] {
				wd++
			}
			want(wd, sg[0], "div")
		}
	case firrtl.OpRem:
		if sameSign() {
			want(min(w[0], w[1]), sg[0], "rem")
		}
	case firrtl.OpLt, firrtl.OpLeq, firrtl.OpGt, firrtl.OpGeq, firrtl.OpEq, firrtl.OpNeq:
		if sameSign() {
			want(1, false, op.Prim.String())
		}
	case firrtl.OpShl:
		if op.P0 < 0 {
			bad(fmt.Sprintf("shl by negative amount %d", op.P0), "")
			return
		}
		want(w[0]+op.P0, sg[0], "shl")
	case firrtl.OpShr:
		if op.P0 < 0 {
			bad(fmt.Sprintf("shr by negative amount %d", op.P0), "")
			return
		}
		want(max(w[0]-op.P0, 1), sg[0], "shr")
	case firrtl.OpDshl:
		if w[1] > 20 {
			bad(fmt.Sprintf("dshl shift operand %d bits wide (engine limit 20)", w[1]), "")
			return
		}
		want(w[0]+(1<<uint(w[1]))-1, sg[0], "dshl")
	case firrtl.OpDshr:
		if w[1] > 20 {
			bad(fmt.Sprintf("dshr shift operand %d bits wide (engine limit 20)", w[1]), "")
			return
		}
		want(w[0], sg[0], "dshr")
	case firrtl.OpCvt:
		wd := w[0]
		if !sg[0] {
			wd++
		}
		want(wd, true, "cvt")
	case firrtl.OpNeg:
		want(w[0]+1, true, "neg")
	case firrtl.OpNot:
		want(w[0], false, "not")
	case firrtl.OpAnd, firrtl.OpOr, firrtl.OpXor:
		want(max(w[0], w[1]), false, op.Prim.String())
	case firrtl.OpAndr, firrtl.OpOrr, firrtl.OpXorr:
		want(1, false, op.Prim.String())
	case firrtl.OpCat:
		want(w[0]+w[1], false, "cat")
	case firrtl.OpBits:
		if op.P1 < 0 || op.P0 < op.P1 {
			bad(fmt.Sprintf("bits(%d, %d): bad range", op.P0, op.P1), "")
			return
		}
		if op.P0 >= w[0] {
			bad(fmt.Sprintf("bits(%d, %d) exceeds operand width %d", op.P0, op.P1, w[0]),
				"a pass narrowed the operand without re-deriving the extract")
			return
		}
		want(op.P0-op.P1+1, false, "bits")
	case firrtl.OpHead:
		if op.P0 < 1 || op.P0 > w[0] {
			bad(fmt.Sprintf("head(%d) of %d-bit operand", op.P0, w[0]), "")
			return
		}
		want(op.P0, false, "head")
	case firrtl.OpTail:
		if op.P0 < 0 || op.P0 >= w[0] {
			bad(fmt.Sprintf("tail(%d) of %d-bit operand leaves no bits", op.P0, w[0]),
				"a pass narrowed the operand without re-deriving the truncation")
			return
		}
		want(w[0]-op.P0, false, "tail")
	}
}

func (c *nlChecker) checkLoops() {
	// BuildGraph dereferences operands and ops unconditionally; a netlist
	// with dangling references or missing drivers cannot be graphed, and
	// the loop question is moot until those are fixed.
	for _, d := range c.diags {
		if d.Sev == SevError && (d.Rule == "NL-REF" || d.Rule == "NL-DRIVE") {
			return
		}
	}
	dg := netlist.BuildGraph(c.d)
	if _, err := dg.G.TopoSort(); err == nil {
		return
	}
	cyc := dg.G.FindCycle()
	names := make([]string, 0, len(cyc))
	for _, n := range cyc {
		if n < len(c.d.Signals) {
			names = append(names, c.d.Signals[n].Name)
		}
	}
	trace := ""
	for i, nm := range names {
		if i > 0 {
			trace += " -> "
		}
		trace += nm
	}
	if len(names) > 0 {
		trace += " -> " + names[0]
	}
	c.add("NL-LOOP", SevError, "design", "combinational loop: "+trace,
		"break the cycle with a register or rework the feedback path")
}

// checkDead flags signals and state that cannot reach any sink (output,
// display, check, or live memory). Advisory only: dead logic simulates
// correctly, it just wastes schedule slots until DCE removes it.
func (c *nlChecker) checkDead() {
	d := c.d
	live := make([]bool, len(d.Signals))
	liveMem := make([]bool, len(d.Mems))
	var stack []netlist.SignalID
	markArg := func(a netlist.Arg) {
		if !a.IsConst() && int(a.Sig) >= 0 && int(a.Sig) < len(d.Signals) && !live[a.Sig] {
			live[a.Sig] = true
			stack = append(stack, a.Sig)
		}
	}
	for _, o := range d.Outputs {
		markArg(netlist.SigArg(o))
	}
	for i := range d.Displays {
		markArg(d.Displays[i].En)
		for _, a := range d.Displays[i].Args {
			markArg(a)
		}
	}
	for i := range d.Checks {
		markArg(d.Checks[i].En)
		markArg(d.Checks[i].Pred)
	}
	for len(stack) > 0 {
		sid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s := &d.Signals[sid]
		switch s.Kind {
		case netlist.KComb:
			if s.Op != nil {
				for _, a := range s.Op.Args {
					markArg(a)
				}
			}
		case netlist.KRegOut:
			if s.Reg >= 0 && s.Reg < len(d.Regs) {
				markArg(netlist.SigArg(d.Regs[s.Reg].Next))
			}
		case netlist.KMemRead:
			if s.MemRead >= 0 && s.MemRead < len(d.MemReads) {
				r := &d.MemReads[s.MemRead]
				markArg(r.Addr)
				markArg(r.En)
				if r.Mem >= 0 && r.Mem < len(d.Mems) && !liveMem[r.Mem] {
					liveMem[r.Mem] = true
					for _, wi := range d.Mems[r.Mem].Writers {
						if wi >= 0 && wi < len(d.MemWrites) {
							w := &d.MemWrites[wi]
							markArg(w.Addr)
							markArg(w.En)
							markArg(w.Data)
							markArg(w.Mask)
						}
					}
				}
			}
		}
	}
	for i := range d.Signals {
		if live[i] {
			continue
		}
		switch d.Signals[i].Kind {
		case netlist.KInput:
			c.add("NL-DEAD", SevInfo, c.sigLoc(netlist.SignalID(i)),
				"input port is never read", "")
		case netlist.KRegOut:
			c.add("NL-DEAD", SevInfo, c.sigLoc(netlist.SignalID(i)),
				"register output cannot reach any sink", "run DCE to drop the register")
		default:
			c.add("NL-DEAD", SevInfo, c.sigLoc(netlist.SignalID(i)),
				"signal cannot reach any sink", "run DCE to drop it")
		}
	}
	for mi := range d.Mems {
		if !liveMem[mi] {
			c.add("NL-DEAD", SevInfo, fmt.Sprintf("mem %q", d.Mems[mi].Name),
				"memory has no live read port", "run DCE to drop it")
		}
	}
}
