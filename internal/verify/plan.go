package verify

import (
	"fmt"

	"essent/internal/netlist"
	"essent/internal/sched"
)

// Plan checks a CCSS execution plan against the safety contract every
// engine relies on (DESIGN.md §9):
//
//	PL-MEMBER  every schedulable node is in exactly one partition and the
//	           global order is the concatenation of partition members
//	PL-DEFUSE  every operand is written earlier in schedule order
//	PL-ELIDE   an in-place register update never overtakes a reader of
//	           the old value
//	PL-WAKE    every cross-partition read is covered by an activity-wake
//	           edge, so a skipped partition cannot be read stale
//	PL-LEVEL   partition levels strictly increase along dependence edges
//	           and the barrier-level schedule covers each partition once
//	PL-ALIAS   partitions sharing a parallel level never write a slot
//	           another one touches
//	PL-SINK    side-effect sinks (display/check) sit in always-on
//	           partitions, so a skip cannot drop an observable effect
//
// All findings are SevError: each one is a proven miscompile under some
// activity pattern.
func Plan(p *sched.CCSSPlan) []Diagnostic {
	c := &planChecker{p: p, dg: p.DG, d: p.DG.D}
	c.buildReads()
	if c.checkMembers(); len(c.diags) > 0 {
		// Node→partition indexing is unreliable; later rules would cascade.
		return c.diags
	}
	c.checkDefUse()
	c.checkElide()
	c.checkWake()
	c.checkLevels()
	c.checkAlias()
	c.checkSinks()
	return c.diags
}

type planChecker struct {
	p     *sched.CCSSPlan
	dg    *netlist.DesignGraph
	d     *netlist.Design
	diags []Diagnostic

	reads    [][]int // pure data operands per node (no ordering edges)
	partOf   []int   // node → runtime partition ID (-1 for sources)
	orderPos []int   // node → position in p.Order (-1 if unscheduled)
}

func (c *planChecker) errf(rule, loc, hint, format string, args ...any) {
	c.diags = append(c.diags, Diagnostic{
		Rule: rule, Sev: SevError, Loc: loc,
		Msg: fmt.Sprintf(format, args...), Hint: hint,
	})
}

// nodeName renders a design-graph node for diagnostics.
func (c *planChecker) nodeName(n int) string {
	switch c.dg.Kind[n] {
	case netlist.NodeSignal:
		return fmt.Sprintf("signal %q", c.d.Signals[n].Name)
	case netlist.NodeMemWrite:
		return fmt.Sprintf("memwrite #%d (mem %q)",
			c.dg.Index[n], c.d.Mems[c.d.MemWrites[c.dg.Index[n]].Mem].Name)
	case netlist.NodeDisplay:
		return fmt.Sprintf("display #%d", c.dg.Index[n])
	default:
		return fmt.Sprintf("check #%d", c.dg.Index[n])
	}
}

// buildReads records, per node, the signal IDs it reads this cycle —
// recomputed from the design so elision ordering edges added to the
// graph by the planner cannot mask a missing data edge.
func (c *planChecker) buildReads() {
	n := c.dg.G.Len()
	c.reads = make([][]int, n)
	// Count first, then carve per-node lists out of one backing array:
	// the verifier runs on every compile, and per-node append growth
	// would dominate its cost.
	counts := make([]int, n)
	total := 0
	count := func(to int, a netlist.Arg) {
		if !a.IsConst() {
			counts[to]++
			total++
		}
	}
	c.forEachRead(count)
	backing := make([]int, 0, total)
	for v := 0; v < n; v++ {
		start := len(backing)
		backing = backing[:start+counts[v]]
		c.reads[v] = backing[start:start:len(backing)]
	}
	add := func(to int, a netlist.Arg) {
		if !a.IsConst() {
			c.reads[to] = append(c.reads[to], int(a.Sig))
		}
	}
	c.forEachRead(add)
}

// forEachRead visits every per-cycle data operand of every node.
func (c *planChecker) forEachRead(add func(to int, a netlist.Arg)) {
	n := c.dg.G.Len()
	for i := range c.d.Signals {
		s := &c.d.Signals[i]
		switch s.Kind {
		case netlist.KComb:
			for _, a := range s.Op.Args {
				add(i, a)
			}
		case netlist.KMemRead:
			r := &c.d.MemReads[s.MemRead]
			add(i, r.Addr)
			add(i, r.En)
		}
	}
	for i := len(c.d.Signals); i < n; i++ {
		switch c.dg.Kind[i] {
		case netlist.NodeMemWrite:
			w := &c.d.MemWrites[c.dg.Index[i]]
			add(i, w.Addr)
			add(i, w.En)
			add(i, w.Data)
			add(i, w.Mask)
		case netlist.NodeDisplay:
			dp := &c.d.Displays[c.dg.Index[i]]
			add(i, dp.En)
			for _, a := range dp.Args {
				add(i, a)
			}
		case netlist.NodeCheck:
			ck := &c.d.Checks[c.dg.Index[i]]
			add(i, ck.En)
			add(i, ck.Pred)
		}
	}
}

// schedulable reports whether a node must appear in the schedule:
// combinational and memory-read signals plus every side-effect sink.
// Sources (inputs, register outputs) are defined at cycle start.
func (c *planChecker) schedulable(n int) bool {
	if c.dg.Kind[n] != netlist.NodeSignal {
		return true
	}
	k := c.d.Signals[n].Kind
	return k == netlist.KComb || k == netlist.KMemRead
}

// checkMembers (PL-MEMBER): partition membership is a partitioning of
// the schedulable nodes, and Order is its concatenation.
func (c *planChecker) checkMembers() {
	n := c.dg.G.Len()
	c.partOf = make([]int, n)
	c.orderPos = make([]int, n)
	for i := range c.partOf {
		c.partOf[i] = -1
		c.orderPos[i] = -1
	}
	pos := 0
	for pi := range c.p.Parts {
		for _, m := range c.p.Parts[pi].Members {
			loc := fmt.Sprintf("partition %d", pi)
			if m < 0 || m >= n {
				c.errf("PL-MEMBER", loc, "",
					"member node %d out of range [0,%d)", m, n)
				continue
			}
			if !c.schedulable(m) {
				c.errf("PL-MEMBER", loc,
					"sources are defined at cycle start and must stay unscheduled",
					"%s is a source and cannot be a partition member", c.nodeName(m))
				continue
			}
			if c.partOf[m] >= 0 {
				c.errf("PL-MEMBER", loc,
					"a node evaluated twice per cycle double-fires side effects",
					"%s already belongs to partition %d", c.nodeName(m), c.partOf[m])
				continue
			}
			c.partOf[m] = pi
			if pos >= len(c.p.Order) || c.p.Order[pos] != m {
				c.errf("PL-MEMBER", loc,
					"Order must be the concatenation of Parts[*].Members",
					"Order[%d] does not match member %s", pos, c.nodeName(m))
			}
			pos++
		}
	}
	if pos != len(c.p.Order) {
		c.errf("PL-MEMBER", "plan", "",
			"Order has %d entries but partitions hold %d members", len(c.p.Order), pos)
	}
	for m := 0; m < n; m++ {
		if c.schedulable(m) && c.partOf[m] < 0 {
			c.errf("PL-MEMBER", c.nodeName(m),
				"every comb/memread signal and sink must be scheduled",
				"schedulable node is in no partition")
		}
	}
	if len(c.diags) > 0 {
		return
	}
	for i, m := range c.p.Order {
		c.orderPos[m] = i
	}
}

// checkDefUse (PL-DEFUSE): every operand of every scheduled node is
// either a source or written strictly earlier in the global order.
func (c *planChecker) checkDefUse() {
	for i, m := range c.p.Order {
		for _, u := range c.reads[m] {
			if c.dg.IsSource(u) {
				continue
			}
			if c.orderPos[u] < 0 {
				c.errf("PL-DEFUSE", c.nodeName(m), "",
					"reads unscheduled %s", c.nodeName(u))
			} else if c.orderPos[u] >= i {
				c.errf("PL-DEFUSE", c.nodeName(m),
					"reorder the schedule so producers precede consumers",
					"reads %s which is scheduled later (order %d >= %d)",
					c.nodeName(u), c.orderPos[u], i)
			}
		}
	}
}

// checkElide (PL-ELIDE): an elided register's in-place write (at its
// next-value node) must come after every reader of the old output.
func (c *planChecker) checkElide() {
	any := false
	for _, el := range c.p.Elided {
		if el {
			any = true
			break
		}
	}
	if !any {
		return
	}
	// Invert the read lists once: readersOf[u] = nodes reading signal u.
	readersOf := make([][]int32, len(c.d.Signals))
	for v := range c.reads {
		for _, u := range c.reads[v] {
			readersOf[u] = append(readersOf[u], int32(v))
		}
	}
	for ri, el := range c.p.Elided {
		if !el {
			continue
		}
		r := &c.d.Regs[ri]
		wPos := c.orderPos[int(r.Next)]
		if wPos < 0 {
			c.errf("PL-ELIDE", fmt.Sprintf("register %q", c.d.Signals[r.Out].Name),
				"an elided register's next value must be scheduled",
				"marked elided but its next value %s is unscheduled",
				c.nodeName(int(r.Next)))
			continue
		}
		for _, v := range readersOf[r.Out] {
			if int(v) == int(r.Next) {
				continue
			}
			if c.orderPos[v] > wPos {
				c.errf("PL-ELIDE",
					fmt.Sprintf("register %q", c.d.Signals[r.Out].Name),
					"readers of the old value must run before the in-place update",
					"reader %s (order %d) runs after the in-place write at order %d",
					c.nodeName(int(v)), c.orderPos[v], wPos)
			}
		}
	}
}

// checkWake (PL-WAKE): every cross-partition read has a wake edge —
// a change to the producer marks the consumer partition active, so
// skipping the consumer is provably safe.
func (c *planChecker) checkWake() {
	// Output plans indexed (producer partition, signal) → consumer list.
	// Consumer lists are short (a handful of partitions), so membership is
	// a linear scan; the slices reference the plan in place — no per-plan
	// set allocation on the compile path.
	outCons := map[[2]int][]int{}
	for pi := range c.p.Parts {
		for _, op := range c.p.Parts[pi].Outputs {
			key := [2]int{pi, int(op.Sig)}
			if prev, ok := outCons[key]; ok {
				outCons[key] = append(append([]int(nil), prev...), op.Consumers...)
			} else {
				outCons[key] = op.Consumers
			}
		}
	}
	// Signal-indexed source lookups (maps here would be hit once per read).
	inputIdx := make([]int32, len(c.d.Signals))
	regOfOut := make([]int32, len(c.d.Signals))
	for i := range inputIdx {
		inputIdx[i] = -1
		regOfOut[i] = -1
	}
	for i, in := range c.d.Inputs {
		inputIdx[in] = int32(i)
	}
	for ri := range c.d.Regs {
		regOfOut[c.d.Regs[ri].Out] = int32(ri)
	}
	hasCons := func(list []int, q int) bool {
		for _, p := range list {
			if p == q {
				return true
			}
		}
		return false
	}

	for _, m := range c.p.Order {
		pv := c.partOf[m]
		for _, u := range c.reads[m] {
			switch c.d.Signals[u].Kind {
			case netlist.KInput:
				if !hasCons(c.p.InputConsumers[inputIdx[u]], pv) {
					c.errf("PL-WAKE", c.nodeName(m),
						"add the consumer partition to InputConsumers",
						"reads input %q but partition %d is not an input consumer",
						c.d.Signals[u].Name, pv)
				}
			case netlist.KRegOut:
				if !hasCons(c.p.RegReaderParts[regOfOut[u]], pv) {
					c.errf("PL-WAKE", c.nodeName(m),
						"add the consumer partition to RegReaderParts",
						"reads register %q but partition %d is not in its reader list",
						c.d.Signals[u].Name, pv)
				}
			default:
				pu := c.partOf[u]
				if pu == pv {
					continue
				}
				if !hasCons(outCons[[2]int{pu, u}], pv) {
					c.errf("PL-WAKE", c.nodeName(m),
						"emit an OutputPlan on the producer partition listing this consumer",
						"reads %s across partitions (%d → %d) with no wake edge",
						c.nodeName(u), pu, pv)
				}
			}
		}
	}

	// Register change delivery: an elided register must publish its
	// output through a change-detected OutputPlan; a two-phase register
	// must be committed by its writer partition.
	for ri := range c.d.Regs {
		r := &c.d.Regs[ri]
		w := c.partOf[int(r.Next)]
		if w < 0 {
			continue
		}
		loc := fmt.Sprintf("register %q", c.d.Signals[r.Out].Name)
		if c.p.Elided[ri] {
			cons := outCons[[2]int{w, int(r.Out)}]
			for _, q := range c.p.RegReaderParts[ri] {
				if !hasCons(cons, q) {
					c.errf("PL-WAKE", loc,
						"elided registers wake readers through an OutputPlan on the writer partition",
						"elided, but reader partition %d gets no wake from writer partition %d", q, w)
				}
			}
		} else {
			found := false
			for _, q := range c.p.Parts[w].Regs {
				if q == ri {
					found = true
					break
				}
			}
			if !found {
				c.errf("PL-WAKE", loc,
					"non-elided registers must be in their writer partition's commit list",
					"not elided and not committed by writer partition %d", w)
			}
		}
	}

	// Memory read ports must be covered so a write wakes every reader.
	for mi := range c.d.Mems {
		for _, rp := range c.d.Mems[mi].Readers {
			p := c.partOf[int(c.d.MemReads[rp].Data)]
			if p >= 0 && !hasCons(c.p.MemReaderParts[mi], p) {
				c.errf("PL-WAKE", fmt.Sprintf("mem %q", c.d.Mems[mi].Name),
					"add the read-port partition to MemReaderParts",
					"read port %d lives in partition %d which is not in MemReaderParts",
					rp, p)
			}
		}
	}
}

// checkLevels (PL-LEVEL): levels strictly increase along every
// dependence edge (data and elision-ordering), and the barrier-level
// schedule is a permutation of the partitions consistent with SpecOf.
func (c *planChecker) checkLevels() {
	np := len(c.p.Parts)
	if len(c.p.PartLevels) != np {
		c.errf("PL-LEVEL", "plan", "",
			"PartLevels has %d entries for %d partitions", len(c.p.PartLevels), np)
		return
	}
	maxL := -1
	for _, l := range c.p.PartLevels {
		if l > maxL {
			maxL = l
		}
	}
	if c.p.NumLevels != maxL+1 {
		c.errf("PL-LEVEL", "plan", "",
			"NumLevels is %d but max level is %d", c.p.NumLevels, maxL)
	}
	for _, m := range c.p.Order {
		pv := c.partOf[m]
		for _, u := range c.reads[m] {
			pu := -1
			if !c.dg.IsSource(u) {
				pu = c.partOf[u]
			}
			if pu >= 0 && pu != pv && c.p.PartLevels[pv] <= c.p.PartLevels[pu] {
				c.errf("PL-LEVEL", fmt.Sprintf("partition %d", pv),
					"levels must strictly increase along data edges or parallel evaluation races",
					"level %d does not exceed producer partition %d's level %d (edge %s → %s)",
					c.p.PartLevels[pv], pu, c.p.PartLevels[pu], c.nodeName(u), c.nodeName(m))
			}
		}
	}
	// Elision ordering: every cross-partition reader of an elided
	// register must be on a strictly lower level than the writer.
	for ri, el := range c.p.Elided {
		if !el {
			continue
		}
		r := &c.d.Regs[ri]
		w := c.partOf[int(r.Next)]
		if w < 0 {
			continue
		}
		for _, q := range c.p.RegReaderParts[ri] {
			if q != w && c.p.PartLevels[q] >= c.p.PartLevels[w] {
				c.errf("PL-LEVEL", fmt.Sprintf("register %q", c.d.Signals[r.Out].Name),
					"elided writers must be leveled after every cross-partition reader",
					"reader partition %d (level %d) not below writer partition %d (level %d)",
					q, c.p.PartLevels[q], w, c.p.PartLevels[w])
			}
		}
	}
	// Spec schedule: concatenated spec parts are the identity permutation
	// (runtime IDs are level-major), SpecOf agrees, and a parallel spec
	// holds exactly one level.
	want := 0
	for si, spec := range c.p.LevelSpecs {
		loc := fmt.Sprintf("level spec %d", si)
		for _, pi := range spec.Parts {
			if pi != want {
				c.errf("PL-LEVEL", loc,
					"spec parts must cover runtime partition IDs in order",
					"expected partition %d, got %d", want, pi)
			}
			want++
			if pi >= 0 && pi < np && int(c.p.SpecOf[pi]) != si {
				c.errf("PL-LEVEL", loc, "",
					"SpecOf[%d] is %d, not %d", pi, c.p.SpecOf[pi], si)
			}
		}
		if !spec.Serial && len(spec.Parts) > 0 {
			l0 := c.p.PartLevels[spec.Parts[0]]
			for _, pi := range spec.Parts {
				if c.p.PartLevels[pi] != l0 {
					c.errf("PL-LEVEL", loc,
						"a parallel spec must hold a single DAG level",
						"mixes levels %d and %d without Serial", l0, c.p.PartLevels[pi])
				}
			}
		}
	}
	if want != np {
		c.errf("PL-LEVEL", "plan",
			"every partition must appear in exactly one level spec",
			"level specs cover %d of %d partitions", want, np)
	}
}

// checkAlias (PL-ALIAS): inside a parallel spec, no partition writes a
// signal slot that another partition of the same spec reads or writes.
// Elided registers write their output slot in place, so it joins the
// writer's write set.
func (c *planChecker) checkAlias() {
	elidedOutOf := map[int][]int{} // writer partition → elided reg out signals
	for ri, el := range c.p.Elided {
		if !el {
			continue
		}
		w := c.partOf[int(c.d.Regs[ri].Next)]
		if w >= 0 {
			elidedOutOf[w] = append(elidedOutOf[w], int(c.d.Regs[ri].Out))
		}
	}
	for si, spec := range c.p.LevelSpecs {
		if spec.Serial || len(spec.Parts) < 2 {
			continue
		}
		writer := map[int]int{} // signal → writing partition within this spec
		for _, pi := range spec.Parts {
			writes := append([]int(nil), elidedOutOf[pi]...)
			for _, m := range c.p.Parts[pi].Members {
				if c.dg.Kind[m] == netlist.NodeSignal {
					writes = append(writes, m)
				}
			}
			for _, sig := range writes {
				if prev, ok := writer[sig]; ok && prev != pi {
					c.errf("PL-ALIAS", fmt.Sprintf("level spec %d", si),
						"two same-level partitions writing one slot race under parallel evaluation",
						"partitions %d and %d both write %s", prev, pi, c.nodeName(sig))
				}
				writer[sig] = pi
			}
		}
		for _, pi := range spec.Parts {
			for _, m := range c.p.Parts[pi].Members {
				for _, u := range c.reads[m] {
					if w, ok := writer[u]; ok && w != pi {
						c.errf("PL-ALIAS", fmt.Sprintf("level spec %d", si),
							"a same-level read of a written slot races under parallel evaluation",
							"partition %d reads %s written by same-spec partition %d",
							pi, c.nodeName(u), w)
					}
				}
			}
		}
	}
}

// checkSinks (PL-SINK): display and check sinks must sit in always-on
// partitions; otherwise an activity skip drops an observable effect.
// Memory writes may sleep: their partition wakes whenever an operand
// changes, and re-running an unchanged write is idempotent.
func (c *planChecker) checkSinks() {
	for n := len(c.d.Signals); n < c.dg.G.Len(); n++ {
		k := c.dg.Kind[n]
		if k != netlist.NodeDisplay && k != netlist.NodeCheck {
			continue
		}
		pi := c.partOf[n]
		if pi >= 0 && !c.p.Parts[pi].AlwaysOn {
			c.errf("PL-SINK", c.nodeName(n),
				"route display/check sinks to always-on partitions",
				"side-effect sink in skippable partition %d", pi)
		}
	}
}
