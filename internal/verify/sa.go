package verify

import (
	"fmt"

	"essent/internal/bits"
	"essent/internal/netlist"
	"essent/internal/sa"
)

// Static-activity lint rules (catalogue in DESIGN.md §13):
//
//	SA-CONST  advisory: a mux selector is proven constant, so one arm —
//	          and the cone feeding only it — can never be taken
//	SA-DEAD   a cone is observable only under a guard that is proven
//	          statically unsatisfiable: it can never reach any sink
//	SA-WIDTH  a register's declared width exceeds the widest value the
//	          fixpoint proves it can ever hold
//
// All three ride on internal/sa's known-bits/guard results and are
// advisory severities: they flag wasted work (the optimizer deletes the
// SA-CONST/SA-DEAD cones on engine paths), never unsound designs.

// SA runs the static-activity advisory rules on a design. A design the
// analysis cannot process (combinational loop — NL-LOOP reports it with
// a trace) yields no findings.
func SA(d *netlist.Design) []Diagnostic {
	r, err := sa.Analyze(d, sa.Options{})
	if err != nil {
		return nil
	}
	c := &nlChecker{d: d}

	for i := range d.Signals {
		s := &d.Signals[i]
		if s.Kind != netlist.KComb || s.Op == nil || s.Op.Kind != netlist.OMux {
			continue
		}
		sel := s.Op.Args[0]
		taken := ""
		switch {
		case sel.IsConst():
			if bits.IsZero(d.Consts[sel.Const].Words) {
				taken = "false"
			} else {
				taken = "true"
			}
		case r.KnownNonzero(sel.Sig):
			taken = "true"
		case r.KnownZero(sel.Sig):
			taken = "false"
		}
		if taken == "" {
			continue
		}
		dead := "true"
		if taken == "true" {
			dead = "false"
		}
		c.add("SA-CONST", SevInfo, c.sigLoc(netlist.SignalID(i)),
			fmt.Sprintf("mux selector is proven constant (always takes the %s arm); the %s arm is unreachable", taken, dead),
			"the optimizer folds the mux and deletes the unreachable cone; drop the branch at the source if it is not reset plumbing")
	}

	for i := range d.Signals {
		if !r.Dead[i] {
			continue
		}
		c.add("SA-DEAD", SevWarn, c.sigLoc(netlist.SignalID(i)),
			"cone is observable only under a guard proven statically unsatisfiable: no sink can ever see it",
			"the enable is tied off; delete the cone or fix the guard")
	}

	for ri := range d.Regs {
		reg := &d.Regs[ri]
		out := reg.Out
		s := &d.Signals[out]
		if s.Signed || r.ProvenWidth[out] >= s.Width {
			continue
		}
		c.add("SA-WIDTH", SevInfo, c.sigLoc(out),
			fmt.Sprintf("register declared %d bits but provably never holds more than %d", s.Width, r.ProvenWidth[out]),
			"narrow the declaration: state bits cost simulation width class and memory")
	}

	return c.diags
}
