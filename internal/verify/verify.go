// Package verify is the static-analysis subsystem that proves compiled
// artifacts safe before they run. It operates at two layers below the
// engines:
//
//   - netlist lint (Design / Lint): structural soundness of the flat IR —
//     every operand resolves, every signal has exactly one driver, widths
//     and signs agree with the FIRRTL result rules at every op boundary,
//     the combinational graph is acyclic (with a readable cycle trace),
//     and — advisory — no signal is dead weight.
//
//   - plan verification (Plan): the CCSS schedule's safety contract — the
//     global order defines values before they are used, register update
//     elision never lets a write overtake a read, every cross-partition
//     read is covered by an activity-wake edge (so a sleeping partition
//     provably cannot be read stale by an executed one), DAG levels are
//     consistent and disjoint so parallel evaluation cannot race, and
//     side-effect sinks live in always-on partitions so a skip can never
//     drop an observable effect.
//
// A third layer, the machine-schedule checks (SM-* rules), lives in
// internal/sim where the compiled instruction stream is visible; it emits
// the same Diagnostic type. Engines run all applicable layers at
// construction; Mode selects whether violations abort compilation
// (Strict, the default), print and continue (Warn), or are skipped (Off).
package verify

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// Severity grades a diagnostic.
type Severity uint8

// Severities. SevError marks a proven safety violation (strict mode
// refuses to build the simulator); SevWarn marks a suspicious-but-legal
// construct; SevInfo is advisory lint output.
const (
	SevError Severity = iota
	SevWarn
	SevInfo
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarn:
		return "warn"
	case SevInfo:
		return "info"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Diagnostic is one structured finding: a rule identifier from the
// catalogue (DESIGN.md §9), a severity, a human-locatable site, the
// violation, and a fix hint.
type Diagnostic struct {
	Rule string   // catalogue ID, e.g. "NL-WIDTH", "PL-WAKE", "SM-ALIAS"
	Sev  Severity // error / warn / info
	Loc  string   // site, e.g. `signal "io_out"`, "partition 12", "sched[345]"
	Msg  string   // what is wrong
	Hint string   // how to fix it (may be empty)
}

func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s: %s: %s", d.Rule, d.Sev, d.Loc, d.Msg)
	if d.Hint != "" {
		fmt.Fprintf(&b, " (hint: %s)", d.Hint)
	}
	return b.String()
}

// Format renders diagnostics one per line (the CLI and golden-test
// format).
func Format(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Errors filters to SevError diagnostics.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Sev == SevError {
			out = append(out, d)
		}
	}
	return out
}

// Mode selects how verification findings are enforced. The zero value is
// Strict: every compile path verifies by default and refuses to build on
// a proven violation.
type Mode uint8

// Modes.
const (
	// Strict fails compilation on any SevError diagnostic.
	Strict Mode = iota
	// Warn prints every diagnostic to stderr and continues.
	Warn
	// Off skips verification entirely.
	Off
)

func (m Mode) String() string {
	switch m {
	case Strict:
		return "strict"
	case Warn:
		return "warn"
	case Off:
		return "off"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode resolves a -verify flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "strict", "":
		return Strict, nil
	case "warn":
		return Warn, nil
	case "off":
		return Off, nil
	default:
		return 0, fmt.Errorf("verify: unknown mode %q (want strict, warn, or off)", s)
	}
}

// ViolationError is the error Enforce returns in strict mode; it carries
// the diagnostics so callers can render them structurally.
type ViolationError struct {
	Diags []Diagnostic // the SevError findings
}

func (e *ViolationError) Error() string {
	if len(e.Diags) == 1 {
		return "verify: " + e.Diags[0].String()
	}
	return fmt.Sprintf("verify: %d violations:\n%s", len(e.Diags),
		strings.TrimRight(Format(e.Diags), "\n"))
}

// Enforce applies a mode to a finding set: Strict returns a
// *ViolationError when any SevError is present, Warn writes everything to
// w (stderr when nil) and returns nil, Off always returns nil. Callers
// that use Off should skip running the checks instead; Enforce tolerates
// it for uniformity.
func Enforce(mode Mode, diags []Diagnostic, w io.Writer) error {
	switch mode {
	case Off:
		return nil
	case Warn:
		if len(diags) > 0 {
			if w == nil {
				w = os.Stderr
			}
			io.WriteString(w, Format(diags))
		}
		return nil
	default:
		if errs := Errors(diags); len(errs) > 0 {
			return &ViolationError{Diags: errs}
		}
		return nil
	}
}
