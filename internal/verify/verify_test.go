package verify_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"essent/internal/firrtl"
	"essent/internal/netlist"
	"essent/internal/sched"
	"essent/internal/verify"
)

// multiSrc is a small design that splits into several partitions at low
// Cp: two independent register cones plus a node (o2) reading across
// both, so cross-partition wake edges exist to break.
const multiSrc = `
circuit T :
  module T :
    input clock : Clock
    input a : UInt<8>
    input b : UInt<8>
    output o1 : UInt<8>
    output o2 : UInt<8>
    reg r1 : UInt<8>, clock
    reg r2 : UInt<8>, clock
    node s1 = tail(add(a, r1), 1)
    node s2 = tail(add(b, r2), 1)
    r1 <= s1
    r2 <= s2
    o1 <= r1
    o2 <= xor(s1, s2)
`

// elideSrc has a single register with a single-partition reader set, so
// the planner always elides it.
const elideSrc = `
circuit T :
  module T :
    input clock : Clock
    input a : UInt<8>
    output o : UInt<8>
    reg r : UInt<8>, clock
    r <= tail(add(r, a), 1)
    o <= r
`

// sinkSrc carries a display side effect.
const sinkSrc = `
circuit T :
  module T :
    input clock : Clock
    input en : UInt<1>
    input a : UInt<8>
    output o : UInt<8>
    reg r : UInt<8>, clock
    r <= tail(add(r, a), 1)
    o <= r
    printf(clock, en, "tick\n")
`

func compile(t *testing.T, src string) *netlist.Design {
	t.Helper()
	c, err := firrtl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := netlist.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func plan(t *testing.T, d *netlist.Design, cp int) *sched.CCSSPlan {
	t.Helper()
	p, err := sched.PlanCCSS(d, cp)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func hasRule(diags []verify.Diagnostic, rule string) bool {
	for _, d := range diags {
		if d.Rule == rule {
			return true
		}
	}
	return false
}

func wantRule(t *testing.T, diags []verify.Diagnostic, rule string) {
	t.Helper()
	if !hasRule(diags, rule) {
		t.Fatalf("want a %s diagnostic, got:\n%s", rule, verify.Format(diags))
	}
}

func wantClean(t *testing.T, diags []verify.Diagnostic) {
	t.Helper()
	if errs := verify.Errors(diags); len(errs) > 0 {
		t.Fatalf("want clean, got:\n%s", verify.Format(errs))
	}
}

func findSignal(t *testing.T, d *netlist.Design, name string) netlist.SignalID {
	t.Helper()
	for i := range d.Signals {
		if d.Signals[i].Name == name {
			return netlist.SignalID(i)
		}
	}
	t.Fatalf("signal %q not in design", name)
	return netlist.NoSignal
}

// --- Netlist lint rules ------------------------------------------------

func TestDesignClean(t *testing.T) {
	for _, src := range []string{multiSrc, elideSrc, sinkSrc} {
		if diags := verify.Design(compile(t, src)); len(diags) != 0 {
			t.Fatalf("clean design produced findings:\n%s", verify.Format(diags))
		}
	}
}

// Each case mutates a freshly compiled design the way a buggy pass would
// and asserts the lint rule that guards against it fires.
func TestNetlistRules(t *testing.T) {
	cases := []struct {
		name, rule string
		mutate     func(t *testing.T, d *netlist.Design)
	}{
		{"dangling operand", "NL-REF", func(t *testing.T, d *netlist.Design) {
			s := &d.Signals[findSignal(t, d, "s1")]
			s.Op.Args[0] = netlist.SigArg(netlist.SignalID(len(d.Signals) + 7))
		}},
		{"bad const index", "NL-REF", func(t *testing.T, d *netlist.Design) {
			s := &d.Signals[findSignal(t, d, "s1")]
			s.Op.Args[0] = netlist.ConstArg(len(d.Consts) + 3)
		}},
		{"undriven comb", "NL-DRIVE", func(t *testing.T, d *netlist.Design) {
			d.Signals[findSignal(t, d, "s1")].Op = nil
		}},
		{"shared reg next", "NL-DRIVE", func(t *testing.T, d *netlist.Design) {
			d.Regs[1].Next = d.Regs[0].Next
		}},
		{"narrowed result", "NL-WIDTH", func(t *testing.T, d *netlist.Design) {
			// A fold that narrows a signal without re-deriving consumers.
			d.Signals[findSignal(t, d, "s1")].Width = 4
		}},
		{"reg next width", "NL-WIDTH", func(t *testing.T, d *netlist.Design) {
			d.Signals[d.Regs[0].Next].Width = 4
		}},
		{"unmasked const", "NL-CONST", func(t *testing.T, d *netlist.Design) {
			d.Consts = append(d.Consts,
				netlist.Const{Words: []uint64{0xFF}, Width: 4})
		}},
		{"comb loop", "NL-LOOP", func(t *testing.T, d *netlist.Design) {
			a, b := findSignal(t, d, "s1"), findSignal(t, d, "s2")
			d.Signals[a].Op.Args[0] = netlist.SigArg(b)
			d.Signals[b].Op.Args[0] = netlist.SigArg(a)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := compile(t, multiSrc)
			tc.mutate(t, d)
			wantRule(t, verify.Design(d), tc.rule)
		})
	}
}

func TestLintDeadInput(t *testing.T) {
	d := compile(t, `
circuit T :
  module T :
    input clock : Clock
    input a : UInt<8>
    input unused : UInt<8>
    output o : UInt<8>
    o <= a
`)
	diags := verify.Lint(d)
	wantRule(t, diags, "NL-DEAD")
	// Dead code is advisory, never an error.
	wantClean(t, diags)
}

// --- Plan rules --------------------------------------------------------

func TestPlanClean(t *testing.T) {
	for _, src := range []string{multiSrc, elideSrc, sinkSrc} {
		d := compile(t, src)
		for _, cp := range []int{1, 8, 100} {
			if diags := verify.Plan(plan(t, d, cp)); len(diags) != 0 {
				t.Fatalf("cp=%d: clean plan produced findings:\n%s",
					cp, verify.Format(diags))
			}
		}
	}
}

// orderBase returns the offset of partition pi's members in p.Order.
func orderBase(p *sched.CCSSPlan, pi int) int {
	base := 0
	for q := 0; q < pi; q++ {
		base += len(p.Parts[q].Members)
	}
	return base
}

// swapMembers exchanges members i and j of partition pi in both the
// member list and the global order, preserving the concatenation
// invariant so only the targeted rule fires.
func swapMembers(p *sched.CCSSPlan, pi, i, j int) {
	ms := p.Parts[pi].Members
	ms[i], ms[j] = ms[j], ms[i]
	base := orderBase(p, pi)
	p.Order[base+i], p.Order[base+j] = p.Order[base+j], p.Order[base+i]
}

func TestPLMemberDuplicate(t *testing.T) {
	p := plan(t, compile(t, multiSrc), 1)
	last := len(p.Parts) - 1
	p.Parts[last].Members = append(p.Parts[last].Members, p.Parts[0].Members[0])
	wantRule(t, verify.Plan(p), "PL-MEMBER")
}

func TestPLMemberOrderMismatch(t *testing.T) {
	p := plan(t, compile(t, multiSrc), 1)
	p.Order = p.Order[:len(p.Order)-1]
	wantRule(t, verify.Plan(p), "PL-MEMBER")
}

func TestPLDefUseSwap(t *testing.T) {
	d := compile(t, multiSrc)
	p := plan(t, d, 100) // one big partition: intra-partition dependencies
	// Find a producer/consumer pair inside one partition and swap them.
	pos := map[int]int{}
	for pi := range p.Parts {
		for i, m := range p.Parts[pi].Members {
			pos[m] = i
		}
		for j, m := range p.Parts[pi].Members {
			if m >= len(d.Signals) || d.Signals[m].Kind != netlist.KComb {
				continue
			}
			for _, a := range d.Signals[m].Op.Args {
				if a.IsConst() {
					continue
				}
				if i, ok := pos[int(a.Sig)]; ok && i < j {
					swapMembers(p, pi, i, j)
					wantRule(t, verify.Plan(p), "PL-DEFUSE")
					return
				}
			}
		}
		pos = map[int]int{}
	}
	t.Fatal("no intra-partition producer/consumer pair found")
}

func TestPLElideOvertake(t *testing.T) {
	d := compile(t, elideSrc)
	p := plan(t, d, 100)
	if !p.Elided[0] {
		t.Fatal("expected the register to be elided")
	}
	next := int(d.Regs[0].Next)
	out := d.Regs[0].Out
	// Move a reader of the old value after the in-place write.
	for pi := range p.Parts {
		ms := p.Parts[pi].Members
		wIdx := -1
		for i, m := range ms {
			if m == next {
				wIdx = i
			}
		}
		if wIdx < 0 {
			continue
		}
		for i, m := range ms {
			if i >= wIdx || m >= len(d.Signals) || m == next {
				continue
			}
			s := &d.Signals[m]
			if s.Kind != netlist.KComb {
				continue
			}
			for _, a := range s.Op.Args {
				if !a.IsConst() && a.Sig == out {
					swapMembers(p, pi, i, wIdx)
					wantRule(t, verify.Plan(p), "PL-ELIDE")
					return
				}
			}
		}
	}
	t.Fatal("no reader scheduled before the in-place write")
}

func TestPLWakeDroppedInputEdge(t *testing.T) {
	p := plan(t, compile(t, multiSrc), 1)
	fired := false
	for i := range p.InputConsumers {
		if len(p.InputConsumers[i]) > 0 {
			p.InputConsumers[i] = nil
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("no consumed input")
	}
	wantRule(t, verify.Plan(p), "PL-WAKE")
}

func TestPLWakeDroppedRegEdge(t *testing.T) {
	p := plan(t, compile(t, multiSrc), 1)
	fired := false
	for ri := range p.RegReaderParts {
		if len(p.RegReaderParts[ri]) > 0 {
			p.RegReaderParts[ri] = nil
			fired = true
			break
		}
	}
	if !fired {
		t.Fatal("no read register")
	}
	wantRule(t, verify.Plan(p), "PL-WAKE")
}

func TestPLWakeDroppedOutputConsumer(t *testing.T) {
	p := plan(t, compile(t, multiSrc), 1)
	for pi := range p.Parts {
		for oi := range p.Parts[pi].Outputs {
			if len(p.Parts[pi].Outputs[oi].Consumers) > 0 {
				p.Parts[pi].Outputs[oi].Consumers = nil
				wantRule(t, verify.Plan(p), "PL-WAKE")
				return
			}
		}
	}
	t.Fatal("no output plan with consumers")
}

func TestPLLevelTampered(t *testing.T) {
	p := plan(t, compile(t, multiSrc), 1)
	p.NumLevels++
	wantRule(t, verify.Plan(p), "PL-LEVEL")
}

func TestPLLevelFlattened(t *testing.T) {
	p := plan(t, compile(t, multiSrc), 1)
	if p.NumLevels < 2 {
		t.Skip("plan has a single level")
	}
	for i := range p.PartLevels {
		p.PartLevels[i] = 0
	}
	p.NumLevels = 1
	wantRule(t, verify.Plan(p), "PL-LEVEL")
}

func TestPLAliasForcedParallel(t *testing.T) {
	p := plan(t, compile(t, multiSrc), 1)
	if len(p.Parts) < 2 {
		t.Skip("single partition")
	}
	// Claim every partition shares one parallel level: any cross-partition
	// data edge is now a race the verifier must report.
	parts := make([]int, len(p.Parts))
	p.SpecOf = make([]int32, len(p.Parts))
	for i := range parts {
		parts[i] = i
		p.PartLevels[i] = 0
	}
	p.NumLevels = 1
	p.LevelSpecs = []sched.LevelSpec{{Parts: parts, NumLevels: 1}}
	wantRule(t, verify.Plan(p), "PL-ALIAS")
}

func TestPLSinkSkippable(t *testing.T) {
	d := compile(t, sinkSrc)
	p := plan(t, d, 1)
	for pi := range p.Parts {
		for _, m := range p.Parts[pi].Members {
			if m >= len(d.Signals) && p.DG.Kind[m] == netlist.NodeDisplay {
				p.Parts[pi].AlwaysOn = false
				wantRule(t, verify.Plan(p), "PL-SINK")
				return
			}
		}
	}
	t.Fatal("no display sink scheduled")
}

// --- Diagnostic formatting (golden) ------------------------------------

func TestFormatGolden(t *testing.T) {
	diags := []verify.Diagnostic{
		{Rule: "NL-WIDTH", Sev: verify.SevError, Loc: `signal "s1"`,
			Msg:  "declared UInt<4> but tail yields UInt<8>",
			Hint: "re-run width inference after rewriting ops"},
		{Rule: "PL-WAKE", Sev: verify.SevError, Loc: `signal "o2"`,
			Msg:  "reads signal \"s1\" across partitions (0 → 2) with no wake edge",
			Hint: "emit an OutputPlan on the producer partition listing this consumer"},
		{Rule: "NL-DEAD", Sev: verify.SevInfo, Loc: `signal "unused"`,
			Msg: "input port is never read"},
	}
	got := verify.Format(diags)
	golden := filepath.Join("testdata", "diags.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("diagnostic format drifted:\n--- got ---\n%s--- want ---\n%s",
			got, want)
	}
	if !strings.Contains(got, "(hint: ") {
		t.Fatal("hints must render in parentheses")
	}
}

func TestViolationError(t *testing.T) {
	diags := []verify.Diagnostic{
		{Rule: "PL-DEFUSE", Sev: verify.SevError, Loc: "x", Msg: "boom"},
		{Rule: "NL-DEAD", Sev: verify.SevInfo, Loc: "y", Msg: "meh"},
	}
	if err := verify.Enforce(verify.Strict, diags, nil); err == nil {
		t.Fatal("strict mode must reject errors")
	} else if !strings.Contains(err.Error(), "PL-DEFUSE") {
		t.Fatalf("error should carry the rule ID: %v", err)
	}
	var sb strings.Builder
	if err := verify.Enforce(verify.Warn, diags, &sb); err != nil {
		t.Fatalf("warn mode must not fail: %v", err)
	}
	if !strings.Contains(sb.String(), "PL-DEFUSE") {
		t.Fatal("warn mode must print the findings")
	}
	if err := verify.Enforce(verify.Off, diags, nil); err != nil {
		t.Fatalf("off mode must not fail: %v", err)
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]verify.Mode{
		"strict": verify.Strict, "": verify.Strict,
		"warn": verify.Warn, "off": verify.Off,
	} {
		got, err := verify.ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := verify.ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode must be rejected")
	}
}
