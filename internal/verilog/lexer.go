// Package verilog translates a synthesizable Verilog subset into FIRRTL,
// giving the simulator a second frontend (§III-C: "it can take designs
// from any language that produces FIRRTL"). The subset covers structural
// and simple behavioral code: ANSI and classic port declarations,
// wire/reg declarations with ranges, continuous assigns with the usual
// operator set, always @(posedge clk) blocks with non-blocking
// assignments and if/else, module instantiation with named connections,
// and sized/based literals.
package verilog

import (
	"fmt"
	"strings"
)

type vtokKind int

const (
	vEOF vtokKind = iota
	vID
	vNumber // raw literal text (123, 8'hFF, 'b0, ...)
	vPunct  // operators and punctuation, text holds the exact symbol
	vString
)

type vtok struct {
	kind vtokKind
	text string
	line int
}

// vlex tokenizes Verilog source, dropping comments.
func vlex(src string) ([]vtok, error) {
	var toks []vtok
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			i += 2
			for i+1 < n && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			if i+1 >= n {
				return nil, fmt.Errorf("verilog: line %d: unterminated block comment", line)
			}
			i += 2
		case isVIDStart(c):
			j := i
			for j < n && isVIDChar(src[j]) {
				j++
			}
			toks = append(toks, vtok{vID, src[i:j], line})
			i = j
		case c >= '0' && c <= '9' || c == '\'':
			j := i
			// number [size] ['][sdbho] digits, allow underscores.
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '_') {
				j++
			}
			if j < n && src[j] == '\'' {
				j++
				if j < n && (src[j] == 's' || src[j] == 'S') {
					j++
				}
				if j < n {
					j++ // base char
				}
				for j < n && (isHexDigit(src[j]) || src[j] == '_' ||
					src[j] == 'x' || src[j] == 'z' || src[j] == 'X' || src[j] == 'Z') {
					j++
				}
			}
			toks = append(toks, vtok{vNumber, strings.ReplaceAll(src[i:j], "_", ""), line})
			i = j
		case c == '"':
			j := i + 1
			for j < n && src[j] != '"' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("verilog: line %d: unterminated string", line)
			}
			toks = append(toks, vtok{vString, src[i+1 : j], line})
			i = j + 1
		default:
			// Multi-character operators, longest first.
			ops := []string{
				"<<<", ">>>", "===", "!==",
				"&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "**",
			}
			matched := ""
			for _, op := range ops {
				if strings.HasPrefix(src[i:], op) {
					matched = op
					break
				}
			}
			if matched == "" {
				matched = string(c)
				if !strings.ContainsRune("()[]{}:;,.@#?~!&|^+-*/%<>=", rune(c)) {
					return nil, fmt.Errorf("verilog: line %d: unexpected character %q", line, c)
				}
			}
			toks = append(toks, vtok{vPunct, matched, line})
			i += len(matched)
		}
	}
	toks = append(toks, vtok{vEOF, "", line})
	return toks, nil
}

func isVIDStart(c byte) bool {
	return c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isVIDChar(c byte) bool { return isVIDStart(c) || c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
