package verilog

import (
	"fmt"
	"strconv"
	"strings"
)

// ---- AST ----

type vmodule struct {
	name    string
	ports   []vport
	wires   []vdecl
	regs    []vdecl
	assigns []vassign
	always  []valways
	insts   []vinst
	line    int
}

type vport struct {
	name  string
	dir   string // "input" or "output"
	width int
	isReg bool
}

type vdecl struct {
	name  string
	width int
}

type vassign struct {
	lhs  string
	rhs  vexpr
	line int
}

type valways struct {
	clock string
	body  []vstmt
	line  int
}

type vinst struct {
	module string
	name   string
	// conns maps child port name → parent expression.
	conns map[string]vexpr
	order []string
	line  int
}

type vstmt interface{ vstmt() }

type vNonblocking struct {
	lhs  string
	rhs  vexpr
	line int
}

type vIf struct {
	cond        vexpr
	then, else_ []vstmt
}

type vCase struct {
	subject vexpr
	arms    []vCaseArm
	def     []vstmt
}

type vCaseArm struct {
	labels []vexpr // constant expressions
	body   []vstmt
}

func (vNonblocking) vstmt() {}
func (vIf) vstmt()          {}
func (vCase) vstmt()        {}

type vexpr interface{ vexpr() }

type vIdent struct{ name string }
type vLit struct {
	value uint64
	width int // -1 when unsized
}
type vUnary struct {
	op string
	x  vexpr
}
type vBinary struct {
	op   string
	l, r vexpr
}
type vTernary struct{ cond, t, f vexpr }
type vConcat struct{ parts []vexpr }
type vRepl struct {
	count int
	x     vexpr
}
type vIndex struct {
	base    string
	hi, lo  int
	isRange bool
}

func (vIdent) vexpr()   {}
func (vLit) vexpr()     {}
func (vUnary) vexpr()   {}
func (vBinary) vexpr()  {}
func (vTernary) vexpr() {}
func (vConcat) vexpr()  {}
func (vRepl) vexpr()    {}
func (vIndex) vexpr()   {}

// ---- Parser ----

type vparser struct {
	toks []vtok
	i    int
}

// ParseModules parses all modules in a source file.
func ParseModules(src string) ([]*vmodule, error) {
	toks, err := vlex(src)
	if err != nil {
		return nil, err
	}
	p := &vparser{toks: toks}
	var mods []*vmodule
	for !p.at(vEOF) {
		m, err := p.module()
		if err != nil {
			return nil, err
		}
		mods = append(mods, m)
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("verilog: no modules found")
	}
	return mods, nil
}

func (p *vparser) peek() vtok { return p.toks[p.i] }
func (p *vparser) next() vtok { t := p.toks[p.i]; p.i++; return t }
func (p *vparser) at(k vtokKind) bool {
	return p.toks[p.i].kind == k
}
func (p *vparser) atPunct(s string) bool {
	t := p.peek()
	return t.kind == vPunct && t.text == s
}
func (p *vparser) atKw(s string) bool {
	t := p.peek()
	return t.kind == vID && t.text == s
}
func (p *vparser) acceptPunct(s string) bool {
	if p.atPunct(s) {
		p.i++
		return true
	}
	return false
}
func (p *vparser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, found %q", s, p.peek().text)
	}
	return nil
}
func (p *vparser) expectKw(s string) error {
	if !p.atKw(s) {
		return p.errf("expected %q, found %q", s, p.peek().text)
	}
	p.i++
	return nil
}
func (p *vparser) expectID() (string, error) {
	if !p.at(vID) {
		return "", p.errf("expected identifier, found %q", p.peek().text)
	}
	return p.next().text, nil
}
func (p *vparser) errf(format string, args ...any) error {
	return fmt.Errorf("verilog: line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

// rangeWidth parses an optional `[hi:lo]` and returns the width (1 when
// absent). Only zero-based descending ranges are accepted.
func (p *vparser) rangeWidth() (int, error) {
	if !p.acceptPunct("[") {
		return 1, nil
	}
	hi, err := p.constInt()
	if err != nil {
		return 0, err
	}
	if err := p.expectPunct(":"); err != nil {
		return 0, err
	}
	lo, err := p.constInt()
	if err != nil {
		return 0, err
	}
	if err := p.expectPunct("]"); err != nil {
		return 0, err
	}
	if lo != 0 || hi < 0 {
		return 0, p.errf("only [N:0] ranges are supported")
	}
	return hi + 1, nil
}

func (p *vparser) constInt() (int, error) {
	if !p.at(vNumber) {
		return 0, p.errf("expected constant, found %q", p.peek().text)
	}
	t := p.next().text
	lit, err := parseVNumber(t)
	if err != nil {
		return 0, p.errf("%v", err)
	}
	return int(lit.value), nil
}

func parseVNumber(s string) (vLit, error) {
	if !strings.Contains(s, "'") {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return vLit{}, fmt.Errorf("bad number %q", s)
		}
		return vLit{value: v, width: -1}, nil
	}
	parts := strings.SplitN(s, "'", 2)
	width := -1
	if parts[0] != "" {
		w, err := strconv.Atoi(parts[0])
		if err != nil {
			return vLit{}, fmt.Errorf("bad size in %q", s)
		}
		width = w
	}
	rest := parts[1]
	if rest == "" {
		return vLit{}, fmt.Errorf("bad literal %q", s)
	}
	if rest[0] == 's' || rest[0] == 'S' {
		rest = rest[1:] // signedness ignored (subset is unsigned)
	}
	base := 10
	switch rest[0] {
	case 'h', 'H':
		base = 16
	case 'b', 'B':
		base = 2
	case 'o', 'O':
		base = 8
	case 'd', 'D':
		base = 10
	default:
		return vLit{}, fmt.Errorf("bad base in %q", s)
	}
	digits := rest[1:]
	if strings.ContainsAny(digits, "xzXZ") {
		return vLit{}, fmt.Errorf("x/z literals not supported (%q)", s)
	}
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		return vLit{}, fmt.Errorf("bad digits in %q", s)
	}
	if width > 64 {
		return vLit{}, fmt.Errorf("literal %q wider than 64 bits", s)
	}
	if width > 0 && width < 64 {
		v &= 1<<uint(width) - 1
	}
	return vLit{value: v, width: width}, nil
}

func (p *vparser) module() (*vmodule, error) {
	line := p.peek().line
	if err := p.expectKw("module"); err != nil {
		return nil, err
	}
	name, err := p.expectID()
	if err != nil {
		return nil, err
	}
	m := &vmodule{name: name, line: line}
	declared := map[string]bool{}

	// Port list: ANSI (with directions) or classic (names only).
	if p.acceptPunct("(") {
		for !p.atPunct(")") {
			if p.atKw("input") || p.atKw("output") {
				dir := p.next().text
				isReg := false
				if p.atKw("reg") {
					isReg = true
					p.i++
				}
				if p.atKw("wire") {
					p.i++
				}
				w, err := p.rangeWidth()
				if err != nil {
					return nil, err
				}
				pn, err := p.expectID()
				if err != nil {
					return nil, err
				}
				m.ports = append(m.ports, vport{pn, dir, w, isReg})
				declared[pn] = true
				if isReg {
					m.regs = append(m.regs, vdecl{pn, w})
				}
			} else {
				// Classic style: bare names, directions declared inside.
				pn, err := p.expectID()
				if err != nil {
					return nil, err
				}
				m.ports = append(m.ports, vport{pn, "", 1, false})
			}
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}

	// Body items.
	for !p.atKw("endmodule") {
		switch {
		case p.atKw("input"), p.atKw("output"):
			dir := p.next().text
			isReg := false
			if p.atKw("reg") {
				isReg = true
				p.i++
			}
			if p.atKw("wire") {
				p.i++
			}
			w, err := p.rangeWidth()
			if err != nil {
				return nil, err
			}
			for {
				pn, err := p.expectID()
				if err != nil {
					return nil, err
				}
				found := false
				for i := range m.ports {
					if m.ports[i].name == pn {
						m.ports[i].dir = dir
						m.ports[i].width = w
						m.ports[i].isReg = isReg
						found = true
					}
				}
				if !found {
					return nil, p.errf("direction for undeclared port %q", pn)
				}
				if isReg {
					m.regs = append(m.regs, vdecl{pn, w})
				}
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		case p.atKw("wire"):
			p.i++
			w, err := p.rangeWidth()
			if err != nil {
				return nil, err
			}
			for {
				line := p.peek().line
				wn, err := p.expectID()
				if err != nil {
					return nil, err
				}
				m.wires = append(m.wires, vdecl{wn, w})
				// `wire x = expr;` declares and assigns in one statement.
				if p.acceptPunct("=") {
					rhs, err := p.expr()
					if err != nil {
						return nil, err
					}
					m.assigns = append(m.assigns, vassign{wn, rhs, line})
				}
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		case p.atKw("reg"):
			p.i++
			w, err := p.rangeWidth()
			if err != nil {
				return nil, err
			}
			for {
				rn, err := p.expectID()
				if err != nil {
					return nil, err
				}
				m.regs = append(m.regs, vdecl{rn, w})
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
		case p.atKw("assign"):
			p.i++
			line := p.peek().line
			lhs, err := p.expectID()
			if err != nil {
				return nil, err
			}
			if p.atPunct("[") {
				return nil, p.errf("part-select assignment targets are not supported")
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			m.assigns = append(m.assigns, vassign{lhs, rhs, line})
		case p.atKw("always"):
			aw, err := p.alwaysBlock()
			if err != nil {
				return nil, err
			}
			m.always = append(m.always, aw)
		case p.at(vID):
			inst, err := p.instance()
			if err != nil {
				return nil, err
			}
			m.insts = append(m.insts, inst)
		default:
			return nil, p.errf("unexpected token %q in module body", p.peek().text)
		}
	}
	p.i++ // endmodule
	return m, nil
}

func (p *vparser) alwaysBlock() (valways, error) {
	line := p.peek().line
	p.i++ // always
	if err := p.expectPunct("@"); err != nil {
		return valways{}, err
	}
	if err := p.expectPunct("("); err != nil {
		return valways{}, err
	}
	if err := p.expectKw("posedge"); err != nil {
		return valways{}, fmt.Errorf(
			"verilog: line %d: only always @(posedge clk) is supported", line)
	}
	clk, err := p.expectID()
	if err != nil {
		return valways{}, err
	}
	if err := p.expectPunct(")"); err != nil {
		return valways{}, err
	}
	body, err := p.stmtOrBlock()
	if err != nil {
		return valways{}, err
	}
	return valways{clock: clk, body: body, line: line}, nil
}

func (p *vparser) stmtOrBlock() ([]vstmt, error) {
	if p.atKw("begin") {
		p.i++
		var out []vstmt
		for !p.atKw("end") {
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		p.i++
		return out, nil
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []vstmt{s}, nil
}

func (p *vparser) stmt() (vstmt, error) {
	switch {
	case p.atKw("if"):
		p.i++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.stmtOrBlock()
		if err != nil {
			return nil, err
		}
		st := vIf{cond: cond, then: then}
		if p.atKw("else") {
			p.i++
			els, err := p.stmtOrBlock()
			if err != nil {
				return nil, err
			}
			st.else_ = els
		}
		return st, nil
	case p.atKw("case"):
		p.i++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		subj, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		cs := vCase{subject: subj}
		for !p.atKw("endcase") {
			if p.atKw("default") {
				p.i++
				if err := p.expectPunct(":"); err != nil {
					return nil, err
				}
				body, err := p.stmtOrBlock()
				if err != nil {
					return nil, err
				}
				cs.def = body
				continue
			}
			var labels []vexpr
			for {
				l, err := p.expr()
				if err != nil {
					return nil, err
				}
				labels = append(labels, l)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct(":"); err != nil {
				return nil, err
			}
			body, err := p.stmtOrBlock()
			if err != nil {
				return nil, err
			}
			cs.arms = append(cs.arms, vCaseArm{labels: labels, body: body})
		}
		p.i++ // endcase
		return cs, nil
	case p.at(vID):
		line := p.peek().line
		lhs, err := p.expectID()
		if err != nil {
			return nil, err
		}
		if p.atPunct("[") {
			return nil, p.errf("indexed register assignment is not supported")
		}
		if !p.acceptPunct("<=") {
			return nil, p.errf("expected '<=' (only non-blocking assignments are supported)")
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return vNonblocking{lhs: lhs, rhs: rhs, line: line}, nil
	default:
		return nil, p.errf("unexpected statement token %q", p.peek().text)
	}
}

func (p *vparser) instance() (vinst, error) {
	line := p.peek().line
	module, err := p.expectID()
	if err != nil {
		return vinst{}, err
	}
	name, err := p.expectID()
	if err != nil {
		return vinst{}, err
	}
	if err := p.expectPunct("("); err != nil {
		return vinst{}, err
	}
	inst := vinst{module: module, name: name, conns: map[string]vexpr{}, line: line}
	for !p.atPunct(")") {
		if err := p.expectPunct("."); err != nil {
			return vinst{}, fmt.Errorf(
				"verilog: line %d: only named port connections are supported", line)
		}
		port, err := p.expectID()
		if err != nil {
			return vinst{}, err
		}
		if err := p.expectPunct("("); err != nil {
			return vinst{}, err
		}
		var e vexpr
		if !p.atPunct(")") {
			e, err = p.expr()
			if err != nil {
				return vinst{}, err
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return vinst{}, err
		}
		inst.conns[port] = e
		inst.order = append(inst.order, port)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return vinst{}, err
	}
	if err := p.expectPunct(";"); err != nil {
		return vinst{}, err
	}
	return inst, nil
}

// ---- Expression parsing (precedence climbing) ----

func (p *vparser) expr() (vexpr, error) { return p.ternary() }

func (p *vparser) ternary() (vexpr, error) {
	c, err := p.logicalOr()
	if err != nil {
		return nil, err
	}
	if !p.acceptPunct("?") {
		return c, nil
	}
	t, err := p.ternary()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	f, err := p.ternary()
	if err != nil {
		return nil, err
	}
	return vTernary{c, t, f}, nil
}

// binLevel builds one precedence level.
func (p *vparser) binLevel(ops []string, sub func() (vexpr, error)) (vexpr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range ops {
			if p.atPunct(op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return l, nil
		}
		p.i++
		r, err := sub()
		if err != nil {
			return nil, err
		}
		l = vBinary{matched, l, r}
	}
}

func (p *vparser) logicalOr() (vexpr, error) {
	return p.binLevel([]string{"||"}, p.logicalAnd)
}
func (p *vparser) logicalAnd() (vexpr, error) {
	return p.binLevel([]string{"&&"}, p.bitOr)
}
func (p *vparser) bitOr() (vexpr, error) {
	return p.binLevel([]string{"|"}, p.bitXor)
}
func (p *vparser) bitXor() (vexpr, error) {
	return p.binLevel([]string{"^"}, p.bitAnd)
}
func (p *vparser) bitAnd() (vexpr, error) {
	return p.binLevel([]string{"&"}, p.equality)
}
func (p *vparser) equality() (vexpr, error) {
	return p.binLevel([]string{"==", "!="}, p.relational)
}
func (p *vparser) relational() (vexpr, error) {
	return p.binLevel([]string{"<=", "<", ">=", ">"}, p.shift)
}
func (p *vparser) shift() (vexpr, error) {
	return p.binLevel([]string{"<<", ">>"}, p.additive)
}
func (p *vparser) additive() (vexpr, error) {
	return p.binLevel([]string{"+", "-"}, p.multiplicative)
}
func (p *vparser) multiplicative() (vexpr, error) {
	return p.binLevel([]string{"*", "/", "%"}, p.unary)
}

func (p *vparser) unary() (vexpr, error) {
	for _, op := range []string{"~", "!", "-", "&", "|", "^"} {
		if p.atPunct(op) {
			p.i++
			x, err := p.unary()
			if err != nil {
				return nil, err
			}
			return vUnary{op, x}, nil
		}
	}
	return p.primary()
}

func (p *vparser) primary() (vexpr, error) {
	switch {
	case p.at(vNumber):
		lit, err := parseVNumber(p.next().text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return lit, nil
	case p.acceptPunct("("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.acceptPunct("{"):
		// Concat or replication.
		first, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.atPunct("{") {
			// {N{expr}}
			count, ok := first.(vLit)
			if !ok {
				return nil, p.errf("replication count must be a constant")
			}
			p.i++
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
			return vRepl{count: int(count.value), x: x}, nil
		}
		parts := []vexpr{first}
		for p.acceptPunct(",") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return vConcat{parts}, nil
	case p.at(vID):
		name := p.next().text
		if p.acceptPunct("[") {
			hi, err := p.constInt()
			if err != nil {
				return nil, err
			}
			if p.acceptPunct(":") {
				lo, err := p.constInt()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct("]"); err != nil {
					return nil, err
				}
				return vIndex{base: name, hi: hi, lo: lo, isRange: true}, nil
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return vIndex{base: name, hi: hi, lo: hi}, nil
		}
		return vIdent{name}, nil
	default:
		return nil, p.errf("unexpected token %q in expression", p.peek().text)
	}
}
