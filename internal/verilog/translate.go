package verilog

import (
	"fmt"
	"math/big"
	"strings"

	"essent/internal/firrtl"
)

// Translate converts Verilog source into a FIRRTL circuit with the given
// top module (empty selects the last module in the file).
//
// Subset semantics (documented divergences from full Verilog): values are
// unsigned; arithmetic is performed at width max(operands)+1 for +/-,
// sum-of-widths for *, and left-operand width for shifts and division;
// every assignment truncates or zero-extends to the target width, which
// matches Verilog's implicit assignment sizing for the supported
// constructs.
func Translate(src, top string) (*firrtl.Circuit, error) {
	mods, err := ParseModules(src)
	if err != nil {
		return nil, err
	}
	byName := map[string]*vmodule{}
	for _, m := range mods {
		byName[m.name] = m
	}
	if top == "" {
		top = mods[len(mods)-1].name
	}
	if byName[top] == nil {
		return nil, fmt.Errorf("verilog: no module %q", top)
	}
	circuit := &firrtl.Circuit{Name: top}
	for _, m := range mods {
		fm, err := translateModule(m, byName)
		if err != nil {
			return nil, err
		}
		circuit.Modules = append(circuit.Modules, fm)
	}
	return circuit, nil
}

// sig is a width-tracked FIRRTL expression under construction.
type sig struct {
	e firrtl.Expr
	w int
}

// translator carries per-module symbol and emission state.
type translator struct {
	m      *vmodule
	mods   map[string]*vmodule
	out    *firrtl.Module
	widths map[string]int    // signal name → width
	rename map[string]string // verilog name → firrtl name (output regs)
	nodeN  int
}

func translateModule(m *vmodule, mods map[string]*vmodule) (*firrtl.Module, error) {
	tr := &translator{
		m: m, mods: mods,
		out:    &firrtl.Module{Name: m.name},
		widths: map[string]int{},
		rename: map[string]string{},
	}
	// Identify the clock: the signal of the always blocks' posedge.
	clock := ""
	for _, a := range m.always {
		if clock == "" {
			clock = a.clock
		} else if clock != a.clock {
			return nil, fmt.Errorf("verilog: module %s: multiple clock domains (%s, %s)",
				m.name, clock, a.clock)
		}
	}

	// Ports.
	regDecl := map[string]int{}
	for _, r := range m.regs {
		regDecl[r.name] = r.width
	}
	for _, p := range m.ports {
		if p.dir == "" {
			return nil, fmt.Errorf("verilog: module %s: port %s has no direction",
				m.name, p.name)
		}
		ty := firrtl.Type{Kind: firrtl.UIntType, Width: p.width}
		if p.name == clock {
			if p.dir != "input" {
				return nil, fmt.Errorf("verilog: module %s: clock %s must be an input",
					m.name, p.name)
			}
			ty = firrtl.Type{Kind: firrtl.ClockType, Width: 1}
		}
		dir := firrtl.Input
		if p.dir == "output" {
			dir = firrtl.Output
		}
		tr.out.Ports = append(tr.out.Ports, firrtl.Port{Name: p.name, Dir: dir, Type: ty})
		tr.widths[p.name] = p.width
	}
	if clock == "" && len(m.regs) > 0 {
		return nil, fmt.Errorf("verilog: module %s: registers without an always block",
			m.name)
	}
	clockRef := func() firrtl.Expr { return &firrtl.Ref{Name: clock} }

	// Declarations: wires and regs. Output regs get an internal register
	// and a connect to the port.
	for _, w := range m.wires {
		tr.out.Body = append(tr.out.Body, &firrtl.DefWire{
			Name: w.name, Type: firrtl.Type{Kind: firrtl.UIntType, Width: w.width}})
		tr.widths[w.name] = w.width
	}
	for _, r := range m.regs {
		name := r.name
		if _, isPort := tr.widths[name]; isPort && tr.rename[name] == "" {
			internal := name + "__reg"
			tr.rename[name] = internal
			name = internal
		}
		tr.out.Body = append(tr.out.Body, &firrtl.DefReg{
			Name: name, Type: firrtl.Type{Kind: firrtl.UIntType, Width: r.width},
			Clock: clockRef(),
		})
		tr.widths[name] = r.width
	}
	// Connect output-reg ports from their internal registers.
	for v, internal := range tr.rename {
		tr.out.Body = append(tr.out.Body, &firrtl.Connect{
			Loc: &firrtl.Ref{Name: v}, Value: &firrtl.Ref{Name: internal}})
	}

	// Instances.
	for _, inst := range m.insts {
		child := tr.mods[inst.module]
		if child == nil {
			return nil, fmt.Errorf("verilog: line %d: unknown module %q", inst.line, inst.module)
		}
		tr.out.Body = append(tr.out.Body, &firrtl.DefInstance{Name: inst.name, Module: inst.module})
		childClock := ""
		for _, a := range child.always {
			childClock = a.clock
		}
		for _, port := range inst.order {
			expr := inst.conns[port]
			var cp *vport
			for i := range child.ports {
				if child.ports[i].name == port {
					cp = &child.ports[i]
				}
			}
			if cp == nil {
				return nil, fmt.Errorf("verilog: line %d: module %s has no port %q",
					inst.line, inst.module, port)
			}
			childRef := &firrtl.SubField{Of: &firrtl.Ref{Name: inst.name}, Field: port}
			if cp.dir == "input" {
				if expr == nil {
					return nil, fmt.Errorf("verilog: line %d: input port %s left open",
						inst.line, port)
				}
				if port == childClock {
					// Clock hookup: must be a plain identifier.
					id, ok := expr.(vIdent)
					if !ok {
						return nil, fmt.Errorf("verilog: line %d: clock connection must be a signal",
							inst.line)
					}
					tr.out.Body = append(tr.out.Body, &firrtl.Connect{
						Loc: childRef, Value: &firrtl.Ref{Name: id.name}})
					continue
				}
				v, err := tr.expr(expr)
				if err != nil {
					return nil, err
				}
				tr.out.Body = append(tr.out.Body, &firrtl.Connect{
					Loc: childRef, Value: tr.fit(v, cp.width).e})
			} else {
				if expr == nil {
					continue // open output
				}
				// Output: target must be a plain signal.
				id, ok := expr.(vIdent)
				if !ok {
					return nil, fmt.Errorf(
						"verilog: line %d: output connection for %s must be a signal",
						inst.line, port)
				}
				target := tr.resolve(id.name)
				tw, ok := tr.widths[target]
				if !ok {
					return nil, fmt.Errorf("verilog: line %d: unknown signal %q",
						inst.line, id.name)
				}
				v := sig{e: childRef, w: cp.width}
				tr.out.Body = append(tr.out.Body, &firrtl.Connect{
					Loc: &firrtl.Ref{Name: target}, Value: tr.fit(v, tw).e})
			}
		}
	}

	// Continuous assigns.
	for _, a := range m.assigns {
		target := tr.resolve(a.lhs)
		tw, ok := tr.widths[target]
		if !ok {
			return nil, fmt.Errorf("verilog: line %d: assign to unknown signal %q",
				a.line, a.lhs)
		}
		v, err := tr.expr(a.rhs)
		if err != nil {
			return nil, err
		}
		tr.out.Body = append(tr.out.Body, &firrtl.Connect{
			Loc: &firrtl.Ref{Name: target}, Value: tr.fit(v, tw).e})
	}

	// Always blocks.
	for _, a := range m.always {
		stmts, err := tr.stmts(a.body)
		if err != nil {
			return nil, err
		}
		tr.out.Body = append(tr.out.Body, stmts...)
	}
	return tr.out, nil
}

// resolve maps a Verilog name to its FIRRTL signal (output regs read the
// internal register).
func (tr *translator) resolve(name string) string {
	if internal, ok := tr.rename[name]; ok {
		return internal
	}
	return name
}

func (tr *translator) stmts(body []vstmt) ([]firrtl.Stmt, error) {
	var out []firrtl.Stmt
	for _, s := range body {
		switch st := s.(type) {
		case vNonblocking:
			target := tr.resolve(st.lhs)
			tw, ok := tr.widths[target]
			if !ok {
				return nil, fmt.Errorf("verilog: line %d: assignment to unknown register %q",
					st.line, st.lhs)
			}
			v, err := tr.expr(st.rhs)
			if err != nil {
				return nil, err
			}
			out = append(out, &firrtl.Connect{
				Loc: &firrtl.Ref{Name: target}, Value: tr.fit(v, tw).e})
		case vIf:
			cond, err := tr.expr(st.cond)
			if err != nil {
				return nil, err
			}
			then, err := tr.stmts(st.then)
			if err != nil {
				return nil, err
			}
			els, err := tr.stmts(st.else_)
			if err != nil {
				return nil, err
			}
			out = append(out, &firrtl.When{Cond: tr.bool1(cond).e, Then: then, Else: els})
		case vCase:
			subj, err := tr.expr(st.subject)
			if err != nil {
				return nil, err
			}
			w, err := tr.caseChain(subj, st.arms, st.def, 0)
			if err != nil {
				return nil, err
			}
			out = append(out, w...)
		default:
			return nil, fmt.Errorf("verilog: unsupported statement %T", s)
		}
	}
	return out, nil
}

// caseChain lowers a case statement into a when/else chain.
func (tr *translator) caseChain(subj sig, arms []vCaseArm, def []vstmt, i int) ([]firrtl.Stmt, error) {
	if i >= len(arms) {
		return tr.stmts(def)
	}
	arm := arms[i]
	var cond sig
	for li, l := range arm.labels {
		lv, err := tr.expr(l)
		if err != nil {
			return nil, err
		}
		eq := tr.prim(firrtl.OpEq, []sig{subj, lv}, nil, 1)
		if li == 0 {
			cond = eq
		} else {
			cond = tr.prim(firrtl.OpOr, []sig{cond, eq}, nil, 1)
		}
	}
	then, err := tr.stmts(arm.body)
	if err != nil {
		return nil, err
	}
	rest, err := tr.caseChain(subj, arms, def, i+1)
	if err != nil {
		return nil, err
	}
	return []firrtl.Stmt{&firrtl.When{Cond: cond.e, Then: then, Else: rest}}, nil
}

// ---- Expressions ----

// node names an intermediate expression so the emitted FIRRTL stays at
// op granularity.
func (tr *translator) node(e firrtl.Expr, w int) sig {
	tr.nodeN++
	name := fmt.Sprintf("_v_%d", tr.nodeN)
	tr.out.Body = append(tr.out.Body, &firrtl.DefNode{Name: name, Value: e})
	return sig{e: &firrtl.Ref{Name: name}, w: w}
}

func (tr *translator) prim(op firrtl.PrimOp, args []sig, params []int, w int) sig {
	exprs := make([]firrtl.Expr, len(args))
	for i, a := range args {
		exprs[i] = a.e
	}
	return tr.node(&firrtl.Prim{Op: op, Args: exprs, Params: params}, w)
}

// fit truncates or zero-extends to the exact width.
func (tr *translator) fit(v sig, w int) sig {
	switch {
	case v.w == w:
		return v
	case v.w > w:
		return tr.prim(firrtl.OpBits, []sig{v}, []int{w - 1, 0}, w)
	default:
		return tr.prim(firrtl.OpPad, []sig{v}, []int{w}, w)
	}
}

// bool1 reduces to one bit (Verilog truthiness).
func (tr *translator) bool1(v sig) sig {
	if v.w == 1 {
		return v
	}
	return tr.prim(firrtl.OpOrr, []sig{v}, nil, 1)
}

func (tr *translator) expr(e vexpr) (sig, error) {
	switch x := e.(type) {
	case vIdent:
		name := tr.resolve(x.name)
		w, ok := tr.widths[name]
		if !ok {
			return sig{}, fmt.Errorf("verilog: unknown signal %q", x.name)
		}
		return sig{e: &firrtl.Ref{Name: name}, w: w}, nil
	case vLit:
		w := x.width
		if w <= 0 {
			w = 32
		}
		v := x.value
		if w < 64 {
			v &= 1<<uint(w) - 1
		}
		return sig{e: &firrtl.Lit{
			Type:  firrtl.Type{Kind: firrtl.UIntType, Width: w},
			Value: new(big.Int).SetUint64(v),
		}, w: w}, nil
	case vIndex:
		name := tr.resolve(x.base)
		w, ok := tr.widths[name]
		if !ok {
			return sig{}, fmt.Errorf("verilog: unknown signal %q", x.base)
		}
		if x.hi >= w || x.lo < 0 || x.hi < x.lo {
			return sig{}, fmt.Errorf("verilog: select %s[%d:%d] out of range (width %d)",
				x.base, x.hi, x.lo, w)
		}
		base := sig{e: &firrtl.Ref{Name: name}, w: w}
		return tr.prim(firrtl.OpBits, []sig{base}, []int{x.hi, x.lo}, x.hi-x.lo+1), nil
	case vUnary:
		v, err := tr.expr(x.x)
		if err != nil {
			return sig{}, err
		}
		switch x.op {
		case "~":
			return tr.prim(firrtl.OpNot, []sig{v}, nil, v.w), nil
		case "!":
			b := tr.bool1(v)
			return tr.prim(firrtl.OpNot, []sig{b}, nil, 1), nil
		case "-":
			// Two's-complement negate at the operand width.
			neg := tr.prim(firrtl.OpNeg, []sig{v}, nil, v.w+1)
			asU := tr.prim(firrtl.OpAsUInt, []sig{neg}, nil, v.w+1)
			return tr.fit(asU, v.w), nil
		case "&":
			return tr.prim(firrtl.OpAndr, []sig{v}, nil, 1), nil
		case "|":
			return tr.prim(firrtl.OpOrr, []sig{v}, nil, 1), nil
		case "^":
			return tr.prim(firrtl.OpXorr, []sig{v}, nil, 1), nil
		}
		return sig{}, fmt.Errorf("verilog: unsupported unary %q", x.op)
	case vBinary:
		return tr.binary(x)
	case vTernary:
		c, err := tr.expr(x.cond)
		if err != nil {
			return sig{}, err
		}
		t, err := tr.expr(x.t)
		if err != nil {
			return sig{}, err
		}
		f, err := tr.expr(x.f)
		if err != nil {
			return sig{}, err
		}
		w := max(t.w, f.w)
		return tr.node(&firrtl.Mux{
			Cond: tr.bool1(c).e, T: tr.fit(t, w).e, F: tr.fit(f, w).e,
		}, w), nil
	case vConcat:
		var acc sig
		for i, part := range x.parts {
			v, err := tr.expr(part)
			if err != nil {
				return sig{}, err
			}
			if i == 0 {
				acc = v
			} else {
				acc = tr.prim(firrtl.OpCat, []sig{acc, v}, nil, acc.w+v.w)
			}
		}
		return acc, nil
	case vRepl:
		if x.count < 1 {
			return sig{}, fmt.Errorf("verilog: replication count %d", x.count)
		}
		v, err := tr.expr(x.x)
		if err != nil {
			return sig{}, err
		}
		acc := v
		for i := 1; i < x.count; i++ {
			acc = tr.prim(firrtl.OpCat, []sig{acc, v}, nil, acc.w+v.w)
		}
		return acc, nil
	default:
		return sig{}, fmt.Errorf("verilog: unsupported expression %T", e)
	}
}

func (tr *translator) binary(x vBinary) (sig, error) {
	l, err := tr.expr(x.l)
	if err != nil {
		return sig{}, err
	}
	r, err := tr.expr(x.r)
	if err != nil {
		return sig{}, err
	}
	w := max(l.w, r.w)
	lw := tr.fit(l, w)
	rw := tr.fit(r, w)
	switch x.op {
	case "+":
		return tr.prim(firrtl.OpAdd, []sig{lw, rw}, nil, w+1), nil
	case "-":
		s := tr.prim(firrtl.OpSub, []sig{lw, rw}, nil, w+1)
		u := tr.prim(firrtl.OpAsUInt, []sig{s}, nil, w+1)
		return tr.fit(u, w), nil
	case "*":
		return tr.prim(firrtl.OpMul, []sig{l, r}, nil, l.w+r.w), nil
	case "/":
		return tr.prim(firrtl.OpDiv, []sig{l, r}, nil, l.w), nil
	case "%":
		return tr.prim(firrtl.OpRem, []sig{l, r}, nil, min(l.w, r.w)), nil
	case "&":
		return tr.prim(firrtl.OpAnd, []sig{lw, rw}, nil, w), nil
	case "|":
		return tr.prim(firrtl.OpOr, []sig{lw, rw}, nil, w), nil
	case "^":
		return tr.prim(firrtl.OpXor, []sig{lw, rw}, nil, w), nil
	case "==":
		return tr.prim(firrtl.OpEq, []sig{lw, rw}, nil, 1), nil
	case "!=":
		return tr.prim(firrtl.OpNeq, []sig{lw, rw}, nil, 1), nil
	case "<":
		return tr.prim(firrtl.OpLt, []sig{lw, rw}, nil, 1), nil
	case "<=":
		return tr.prim(firrtl.OpLeq, []sig{lw, rw}, nil, 1), nil
	case ">":
		return tr.prim(firrtl.OpGt, []sig{lw, rw}, nil, 1), nil
	case ">=":
		return tr.prim(firrtl.OpGeq, []sig{lw, rw}, nil, 1), nil
	case "&&":
		lb, rb := tr.bool1(l), tr.bool1(r)
		return tr.prim(firrtl.OpAnd, []sig{lb, rb}, nil, 1), nil
	case "||":
		lb, rb := tr.bool1(l), tr.bool1(r)
		return tr.prim(firrtl.OpOr, []sig{lb, rb}, nil, 1), nil
	case "<<":
		if lit, ok := x.r.(vLit); ok {
			sh := tr.prim(firrtl.OpShl, []sig{l}, []int{int(lit.value)}, l.w+int(lit.value))
			return tr.fit(sh, l.w), nil
		}
		shAmt := tr.fit(r, min(r.w, 6))
		dw := l.w + (1 << uint(shAmt.w)) - 1
		sh := tr.prim(firrtl.OpDshl, []sig{l, shAmt}, nil, dw)
		return tr.fit(sh, l.w), nil
	case ">>":
		if lit, ok := x.r.(vLit); ok {
			n := int(lit.value)
			sh := tr.prim(firrtl.OpShr, []sig{l}, []int{n}, max(l.w-n, 1))
			return tr.fit(sh, l.w), nil
		}
		shAmt := tr.fit(r, min(r.w, 6))
		return tr.prim(firrtl.OpDshr, []sig{l, shAmt}, nil, l.w), nil
	default:
		return sig{}, fmt.Errorf("verilog: unsupported operator %q", x.op)
	}
}

// TranslateToFIRRTLText is a convenience for tooling: Verilog in, FIRRTL
// concrete syntax out.
func TranslateToFIRRTLText(src, top string) (string, error) {
	c, err := Translate(src, top)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(firrtl.Print(c))
	return b.String(), nil
}
