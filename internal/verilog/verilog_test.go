package verilog

import (
	"strings"
	"testing"

	"essent/internal/netlist"
	"essent/internal/sim"
)

// runVerilog translates, compiles, and returns a simulator.
func runVerilog(t *testing.T, src, top string) sim.Simulator {
	t.Helper()
	circ, err := Translate(src, top)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	d, err := netlist.Compile(circ)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	s, err := sim.New(d, sim.Options{Engine: sim.EngineFullCycle})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func poke(t *testing.T, s sim.Simulator, name string, v uint64) {
	t.Helper()
	id, ok := s.Design().SignalByName(name)
	if !ok {
		t.Fatalf("no signal %q", name)
	}
	s.Poke(id, v)
}

func peek(t *testing.T, s sim.Simulator, name string) uint64 {
	t.Helper()
	id, ok := s.Design().SignalByName(name)
	if !ok {
		t.Fatalf("no signal %q", name)
	}
	return s.Peek(id)
}

func TestCombinationalModule(t *testing.T) {
	s := runVerilog(t, `
// A small ALU slice.
module alu(input [7:0] a, input [7:0] b, input [1:0] op, output [8:0] y);
  wire [8:0] sum;
  wire [8:0] diff;
  assign sum = a + b;
  assign diff = a - b;
  assign y = (op == 2'd0) ? sum :
             (op == 2'd1) ? diff :
             (op == 2'd2) ? {1'b0, a & b} : {1'b0, a | b};
endmodule
`, "alu")
	poke(t, s, "a", 200)
	poke(t, s, "b", 100)
	cases := []struct {
		op   uint64
		want uint64
	}{
		{0, 300}, {1, 100}, {2, 200 & 100}, {3, 200 | 100},
	}
	for _, c := range cases {
		poke(t, s, "op", c.op)
		if err := s.Step(1); err != nil {
			t.Fatal(err)
		}
		if got := peek(t, s, "y"); got != c.want {
			t.Errorf("op=%d: y=%d, want %d", c.op, got, c.want)
		}
	}
}

func TestSubtractionWraps(t *testing.T) {
	s := runVerilog(t, `
module m(input [7:0] a, input [7:0] b, output [7:0] y);
  assign y = a - b;
endmodule
`, "m")
	poke(t, s, "a", 5)
	poke(t, s, "b", 7)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := peek(t, s, "y"); got != 254 {
		t.Fatalf("y = %d, want 254", got)
	}
}

func TestSequentialCounter(t *testing.T) {
	s := runVerilog(t, `
module counter(input clk, input rst, input en, output reg [7:0] q);
  always @(posedge clk) begin
    if (rst)
      q <= 8'd0;
    else if (en)
      q <= q + 8'd1;
  end
endmodule
`, "counter")
	poke(t, s, "rst", 0)
	poke(t, s, "en", 1)
	if err := s.Step(5); err != nil {
		t.Fatal(err)
	}
	if got := peek(t, s, "q__reg"); got != 5 {
		t.Fatalf("q = %d, want 5", got)
	}
	poke(t, s, "en", 0)
	if err := s.Step(3); err != nil {
		t.Fatal(err)
	}
	if got := peek(t, s, "q__reg"); got != 5 {
		t.Fatalf("hold broken: %d", got)
	}
	poke(t, s, "rst", 1)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := peek(t, s, "q__reg"); got != 0 {
		t.Fatalf("reset broken: %d", got)
	}
}

func TestCaseStatement(t *testing.T) {
	s := runVerilog(t, `
module fsm(input clk, input [1:0] sel, output reg [3:0] q);
  always @(posedge clk) begin
    case (sel)
      2'd0: q <= 4'd1;
      2'd1: q <= 4'd2;
      2'd2, 2'd3: q <= 4'd9;
      default: q <= 4'd0;
    endcase
  end
endmodule
`, "fsm")
	for _, c := range []struct{ sel, want uint64 }{{0, 1}, {1, 2}, {2, 9}, {3, 9}} {
		poke(t, s, "sel", c.sel)
		if err := s.Step(1); err != nil {
			t.Fatal(err)
		}
		if got := peek(t, s, "q__reg"); got != c.want {
			t.Errorf("sel=%d: q=%d, want %d", c.sel, got, c.want)
		}
	}
}

func TestHierarchy(t *testing.T) {
	s := runVerilog(t, `
module inv(input [3:0] x, output [3:0] y);
  assign y = ~x;
endmodule

module top(input clk, input [3:0] a, output reg [3:0] q);
  wire [3:0] w;
  inv u0(.x(a), .y(w));
  always @(posedge clk)
    q <= w;
endmodule
`, "top")
	poke(t, s, "a", 0b0101)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := peek(t, s, "q__reg"); got != 0b1010 {
		t.Fatalf("q = %#b", got)
	}
}

func TestConcatReplicationSelect(t *testing.T) {
	s := runVerilog(t, `
module m(input [7:0] a, output [15:0] y, output [3:0] hi, output b2,
         output [5:0] r3);
  assign y = {a, ~a};
  assign hi = a[7:4];
  assign b2 = a[2];
  assign r3 = {3{a[1:0]}};
endmodule
`, "m")
	poke(t, s, "a", 0b1100_0110)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := peek(t, s, "y"); got != 0b1100_0110_0011_1001 {
		t.Fatalf("concat: %#b", got)
	}
	if got := peek(t, s, "hi"); got != 0b1100 {
		t.Fatalf("part select: %#b", got)
	}
	if got := peek(t, s, "b2"); got != 1 {
		t.Fatalf("bit select: %d", got)
	}
	if got := peek(t, s, "r3"); got != 0b10_10_10 {
		t.Fatalf("replication: %#b", got)
	}
}

func TestReductionsAndLogical(t *testing.T) {
	s := runVerilog(t, `
module m(input [3:0] a, input [3:0] b, output y1, output y2, output y3);
  assign y1 = &a;
  assign y2 = a && b;
  assign y3 = !a || (a == b);
endmodule
`, "m")
	poke(t, s, "a", 0xF)
	poke(t, s, "b", 0)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	if peek(t, s, "y1") != 1 || peek(t, s, "y2") != 0 || peek(t, s, "y3") != 0 {
		t.Fatal("reduction/logical wrong")
	}
}

func TestShifts(t *testing.T) {
	s := runVerilog(t, `
module m(input [7:0] a, input [2:0] n, output [7:0] l, output [7:0] r);
  assign l = a << n;
  assign r = a >> 2;
endmodule
`, "m")
	poke(t, s, "a", 0b0001_1000)
	poke(t, s, "n", 2)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := peek(t, s, "l"); got != 0b0110_0000 {
		t.Fatalf("dshl: %#b", got)
	}
	if got := peek(t, s, "r"); got != 0b0000_0110 {
		t.Fatalf("shr: %#b", got)
	}
}

func TestWireInitializer(t *testing.T) {
	s := runVerilog(t, `
module m(input [3:0] a, output [3:0] y);
  wire [3:0] inv = ~a, fwd = a;
  assign y = inv & fwd;
endmodule
`, "m")
	poke(t, s, "a", 0b1010)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := peek(t, s, "y"); got != 0 {
		t.Fatalf("y = %#b, want 0", got)
	}
}

func TestClassicPortStyle(t *testing.T) {
	s := runVerilog(t, `
module m(a, b, y);
  input [3:0] a;
  input [3:0] b;
  output [4:0] y;
  assign y = a + b;
endmodule
`, "m")
	poke(t, s, "a", 9)
	poke(t, s, "b", 8)
	if err := s.Step(1); err != nil {
		t.Fatal(err)
	}
	if got := peek(t, s, "y"); got != 17 {
		t.Fatalf("y = %d", got)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"module m(input a, output y); assign y = a | ; endmodule", "unexpected"},
		{"module m(input a); always @(negedge a) y <= 1; endmodule", "posedge"},
		{"module m(input a, output y); assign y = b; endmodule", "unknown signal"},
		{"module m(input [1:0] a, output y); assign y = a[5]; endmodule", "out of range"},
		{"module m(input clk, output reg q); always @(posedge clk) q = 1; endmodule",
			"non-blocking"},
		{"module m(input a, output y); sub u0(.x(a)); endmodule", "unknown module"},
		{"module m(input [2:1] a, output y); assign y = a[1]; endmodule", "[N:0]"},
	}
	for i, c := range cases {
		_, err := Translate(c.src, "")
		if err == nil {
			t.Errorf("case %d: expected error", i)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %q does not mention %q", i, err, c.want)
		}
	}
}

// TestTranslatedDesignAcrossEngines: a Verilog design must behave
// identically on the CCSS engine.
func TestTranslatedDesignAcrossEngines(t *testing.T) {
	src := `
module lfsr(input clk, input rst, output reg [15:0] q);
  wire fb;
  assign fb = q[15] ^ q[13] ^ q[12] ^ q[10];
  always @(posedge clk) begin
    if (rst)
      q <= 16'hACE1;
    else
      q <= {q[14:0], fb};
  end
endmodule
`
	circ, err := Translate(src, "lfsr")
	if err != nil {
		t.Fatal(err)
	}
	d, err := netlist.Compile(circ)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sim.New(d, sim.Options{Engine: sim.EngineFullCycle})
	if err != nil {
		t.Fatal(err)
	}
	ccss, err := sim.New(d, sim.Options{Engine: sim.EngineCCSS, Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []sim.Simulator{full, ccss} {
		id, _ := d.SignalByName("rst")
		s.Poke(id, 1)
		if err := s.Step(1); err != nil {
			t.Fatal(err)
		}
		s.Poke(id, 0)
		if err := s.Step(100); err != nil {
			t.Fatal(err)
		}
	}
	q, _ := d.SignalByName("q__reg")
	if full.Peek(q) != ccss.Peek(q) {
		t.Fatalf("engines disagree: %#x vs %#x", full.Peek(q), ccss.Peek(q))
	}
	if full.Peek(q) == 0xACE1 {
		t.Fatal("LFSR did not advance")
	}
}
