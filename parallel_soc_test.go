package essent

import (
	"testing"

	"essent/internal/designs"
	"essent/internal/netlist"
	"essent/internal/opt"
	"essent/internal/riscv"
	"essent/internal/sim"
)

// TestSoCParallelDeterminism pins the parallel engine's determinism
// contract on a real design: on the r16 RISC-V SoC, every worker count
// must produce bit-identical architectural state AND identical merged
// Stats — the dispatch decisions and all counters depend only on
// deterministic activity state, never on thread scheduling. The 1-worker
// run is also compared against the sequential CCSS engine.
func TestSoCParallelDeterminism(t *testing.T) {
	circ, err := designs.Build(designs.R16())
	if err != nil {
		t.Fatal(err)
	}
	d, err := netlist.Compile(circ)
	if err != nil {
		t.Fatal(err)
	}
	if d, _, err = opt.Optimize(d); err != nil {
		t.Fatal(err)
	}
	rst, ok := d.SignalByName("reset")
	if !ok {
		t.Fatal("no reset signal")
	}
	cycles := 300
	workerCounts := []int{1, 2, 4}
	if !testing.Short() {
		workerCounts = append(workerCounts, 8)
	}

	regState := func(s sim.Simulator) [][]uint64 {
		var out [][]uint64
		for ri := range d.Regs {
			out = append(out, s.PeekWide(d.Regs[ri].Out, nil))
		}
		return out
	}

	seq, err := sim.New(d, sim.Options{Engine: sim.EngineCCSS, Cp: 8})
	if err != nil {
		t.Fatal(err)
	}
	seq.Poke(rst, 1)
	if err := seq.Step(4); err != nil {
		t.Fatal(err)
	}
	seq.Poke(rst, 0)
	if err := seq.Step(cycles); err != nil {
		t.Fatal(err)
	}
	seqRegs := regState(seq)

	var refStats *sim.Stats
	var refRegs [][]uint64
	for _, workers := range workerCounts {
		p, err := sim.NewParallelCCSS(d, sim.ParallelOptions{Cp: 8, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		p.Poke(rst, 1)
		if err := p.Step(4); err != nil {
			t.Fatal(err)
		}
		p.Poke(rst, 0)
		if err := p.Step(cycles); err != nil {
			t.Fatal(err)
		}
		st := *p.Stats()
		regs := regState(p)
		p.Close()

		for ri := range regs {
			for w := range regs[ri] {
				if regs[ri][w] != seqRegs[ri][w] {
					t.Fatalf("workers=%d: reg %s word %d: par=%#x seq=%#x",
						workers, d.Regs[ri].Name, w, regs[ri][w], seqRegs[ri][w])
				}
			}
		}
		if refStats == nil {
			stCopy := st
			refStats, refRegs = &stCopy, regs
			continue
		}
		if st != *refStats {
			t.Fatalf("workers=%d: merged Stats diverged:\nwant %+v\ngot  %+v",
				workers, *refStats, st)
		}
		for ri := range regs {
			for w := range regs[ri] {
				if regs[ri][w] != refRegs[ri][w] {
					t.Fatalf("workers=%d: reg state diverged at %s", workers, d.Regs[ri].Name)
				}
			}
		}
	}
}

// benchSoC measures steady-state cycles/sec of one engine on the r16 SoC
// running the dhrystone workload (go test -bench SoCEngine).
func benchSoC(b *testing.B, opts sim.Options) {
	circ, err := designs.Build(designs.R16())
	if err != nil {
		b.Fatal(err)
	}
	d, err := netlist.Compile(circ)
	if err != nil {
		b.Fatal(err)
	}
	if d, _, err = opt.Optimize(d); err != nil {
		b.Fatal(err)
	}
	s, err := sim.New(d, opts)
	if err != nil {
		b.Fatal(err)
	}
	r, err := designs.NewRunner(s)
	if err != nil {
		b.Fatal(err)
	}
	w, err := riscv.Workloads(riscv.DefaultWorkloadConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := r.Load(w[0].Program); err != nil { // dhrystone
		b.Fatal(err)
	}
	b.ResetTimer()
	// The workload terminates via stop(); restart it (off the clock) as
	// often as the benchmark budget requires.
	for done := 0; done < b.N; {
		n := b.N - done
		if n > 50_000 {
			n = 50_000
		}
		c0 := s.Stats().Cycles
		err := s.Step(n)
		done += int(s.Stats().Cycles - c0)
		if err != nil {
			b.StopTimer()
			s.Reset()
			if err := r.Load(w[0].Program); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	if pc, ok := s.(*sim.ParallelCCSS); ok {
		pc.Close()
	}
}

func BenchmarkSoCEngineSeq(b *testing.B) {
	benchSoC(b, sim.Options{Engine: sim.EngineCCSS, Cp: 8})
}

func BenchmarkSoCEnginePar1(b *testing.B) {
	benchSoC(b, sim.Options{Engine: sim.EngineCCSSParallel, Cp: 8, Workers: 1})
}

func BenchmarkSoCEnginePar4(b *testing.B) {
	benchSoC(b, sim.Options{Engine: sim.EngineCCSSParallel, Cp: 8, Workers: 4})
}
