// Package ckptio is the engine-neutral checkpoint codec shared between
// the host (internal/ckpt) and generated simulator artifacts. Generated
// modules are separate Go modules that cannot import essent/internal/...,
// so the wire format lives here: a Snapshot is the raw serialized shape —
// design name, layout fingerprint, cycle count, flat stats words, and
// the input/register/memory word sections — with no dependency on the
// simulator packages. internal/ckpt converts between sim.State and
// Snapshot; artifacts build Snapshots directly from their value tables.
package ckptio

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"hash/fnv"
)

// File format (little-endian), identical to the PR 5 ESNTCKP1 layout:
//
//	magic   "ESNTCKP1" (8 bytes; the version digit is part of the magic)
//	design  u32 length + bytes
//	fingerprint u64
//	cycle   u64
//	stats   u32 count + count×u64 (sim.Stats fields in declaration
//	        order; readers tolerate shorter/longer lists so the format
//	        survives counter additions)
//	inputs  u32 count + per entry: u32 words + words×u64
//	regs    u32 count + per entry: u32 words + words×u64
//	mems    u32 count + per entry: u32 words + words×u64
//	crc     u64 CRC64/ECMA over everything above
var magic = [8]byte{'E', 'S', 'N', 'T', 'C', 'K', 'P', '1'}

var crcTable = crc64.MakeTable(crc64.ECMA)

// Snapshot is the raw engine-neutral checkpoint: exactly what goes on
// the wire, with stats as a flat word list (the host maps them onto
// sim.Stats fields; artifacts keep them flat).
type Snapshot struct {
	Design      string
	Fingerprint uint64
	Cycle       uint64
	Stats       []uint64
	// Inputs/Regs/Mems hold one word slice per design input, register,
	// and memory (design declaration order; scalar word layout).
	Inputs [][]uint64
	Regs   [][]uint64
	Mems   [][]uint64
}

// Encode serializes a Snapshot in the checkpoint format (checksum
// included).
func Encode(s *Snapshot) []byte {
	n := len(magic) + 4 + len(s.Design) + 8 + 8 + 4 + len(s.Stats)*8
	for _, sec := range [][][]uint64{s.Inputs, s.Regs, s.Mems} {
		n += 4
		for _, ws := range sec {
			n += 4 + 8*len(ws)
		}
	}
	n += 8
	buf := make([]byte, 0, n)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Design)))
	buf = append(buf, s.Design...)
	buf = binary.LittleEndian.AppendUint64(buf, s.Fingerprint)
	buf = binary.LittleEndian.AppendUint64(buf, s.Cycle)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Stats)))
	for _, w := range s.Stats {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	for _, sec := range [][][]uint64{s.Inputs, s.Regs, s.Mems} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(sec)))
		for _, ws := range sec {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ws)))
			for _, w := range ws {
				buf = binary.LittleEndian.AppendUint64(buf, w)
			}
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, crc64.Checksum(buf, crcTable))
	return buf
}

// decoder is a bounds-checked little-endian reader.
type decoder struct {
	b   []byte
	pos int
	err error
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.pos+4 > len(d.b) {
		d.err = fmt.Errorf("ckptio: truncated at byte %d", d.pos)
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.pos:])
	d.pos += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.pos+8 > len(d.b) {
		d.err = fmt.Errorf("ckptio: truncated at byte %d", d.pos)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.pos:])
	d.pos += 8
	return v
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.pos+n > len(d.b) {
		d.err = fmt.Errorf("ckptio: truncated at byte %d", d.pos)
		return nil
	}
	v := d.b[d.pos : d.pos+n]
	d.pos += n
	return v
}

// Decode parses and checksum-verifies a checkpoint.
func Decode(buf []byte) (*Snapshot, error) {
	if len(buf) < len(magic)+8 {
		return nil, fmt.Errorf("ckptio: buffer too short (%d bytes)", len(buf))
	}
	if string(buf[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("ckptio: bad magic %q", buf[:len(magic)])
	}
	body, tail := buf[:len(buf)-8], buf[len(buf)-8:]
	want := binary.LittleEndian.Uint64(tail)
	if got := crc64.Checksum(body, crcTable); got != want {
		return nil, fmt.Errorf("ckptio: checksum mismatch (got %#x want %#x)", got, want)
	}
	d := &decoder{b: body, pos: len(magic)}
	s := &Snapshot{}
	s.Design = string(d.bytes(int(d.u32())))
	s.Fingerprint = d.u64()
	s.Cycle = d.u64()
	nw := int(d.u32())
	if nw > 1024 {
		return nil, fmt.Errorf("ckptio: implausible stats count %d", nw)
	}
	s.Stats = make([]uint64, nw)
	for i := range s.Stats {
		s.Stats[i] = d.u64()
	}
	for _, dst := range []*[][]uint64{&s.Inputs, &s.Regs, &s.Mems} {
		cnt := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		sec := make([][]uint64, cnt)
		for i := range sec {
			n := int(d.u32())
			if d.err != nil {
				return nil, d.err
			}
			if n > (len(body)-d.pos)/8+1 {
				return nil, fmt.Errorf("ckptio: implausible entry length %d", n)
			}
			ws := make([]uint64, n)
			for k := range ws {
				ws[k] = d.u64()
			}
			sec[i] = ws
		}
		*dst = sec
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.pos != len(body) {
		return nil, fmt.Errorf("ckptio: %d trailing bytes", len(body)-d.pos)
	}
	return s, nil
}

// StateHash digests the architectural portion of a snapshot — cycle,
// inputs, registers, memories — and deliberately excludes the stats
// words and design metadata: two backends at the same architectural
// state hash equal even though their work counters differ. This is the
// divergence-tripwire comparison key exchanged over the serve protocol.
func (s *Snapshot) StateHash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wu(s.Cycle)
	for _, sec := range [][][]uint64{s.Inputs, s.Regs, s.Mems} {
		wu(uint64(len(sec)))
		for _, ws := range sec {
			wu(uint64(len(ws)))
			for _, w := range ws {
				wu(w)
			}
		}
	}
	return h.Sum64()
}
