// Package pipeproto is the framed command protocol between a simulation
// host and a compiled simulator artifact running as a subprocess. The
// host writes command frames on the child's stdin and reads response
// frames from its stdout; stderr stays free for crash logs. Both sides
// of the codec live here (the generated artifact module cannot import
// essent/internal/..., so the protocol must be a public package): the
// host side drives WriteFrame/ReadFrame directly, and the child side
// wraps a generated simulator behind the Child interface and runs the
// Serve loop.
//
// Framing (little-endian):
//
//	magic   u32 "EPP1"
//	type    u8
//	length  u32 payload bytes
//	payload length bytes
//	crc     u64 CRC64/ECMA over type+length+payload
//
// Every request frame receives exactly one terminal response frame;
// TStep additionally emits zero or more RProgress frames (cycle
// reports that double as heartbeats) and any number of ROutput frames
// (printf bytes) before its RStepDone. A corrupted frame fails its CRC
// and surfaces as an error rather than a misparse.
package pipeproto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
)

// Magic opens every frame.
const Magic uint32 = 0x31505045 // "EPP1" little-endian

// MaxPayload bounds a frame against a garbage or hostile peer.
const MaxPayload = 1 << 30

// Frame types. Host→child commands are low values; child→host
// responses have the high bit set.
const (
	THello    byte = 0x01 // () → RHello
	TPoke     byte = 0x02 // name, words → ROK | RErr
	TPeek     byte = 0x03 // name → RValue | RErr
	TPokeMem  byte = 0x04 // name, addr u64, v u64 → ROK | RErr
	TPeekMem  byte = 0x05 // name, addr u64 → RValue | RErr
	TStep     byte = 0x06 // n u64 → RProgress*, ROutput*, RStepDone
	TReset    byte = 0x07 // () → ROK
	TCapture  byte = 0x08 // () → RState
	TRestore  byte = 0x09 // snapshot bytes → ROK | RErr
	THash     byte = 0x0a // () → RValue (one word)
	TStats    byte = 0x0b // () → RValue (stats words)
	TShutdown byte = 0x0c // () → ROK, then the child exits

	RHello    byte = 0x81 // fingerprint u64, design name
	ROK       byte = 0x82 // ()
	RErr      byte = 0x83 // message
	RValue    byte = 0x84 // u32 count + words
	RState    byte = 0x85 // snapshot bytes
	RStepDone byte = 0x86 // cycle u64, status u8, code i64, msg
	RProgress byte = 0x87 // cycle u64 (heartbeat during long steps)
	ROutput   byte = 0x88 // printf bytes
)

// RStepDone status values.
const (
	StepOK      byte = 0
	StepStopped byte = 1
	StepAssert  byte = 2
	StepError   byte = 3
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// ErrBadFrame reports a framing-level failure (bad magic, CRC mismatch,
// implausible length). It wraps the specific cause.
var ErrBadFrame = errors.New("pipeproto: bad frame")

// WriteFrame emits one frame (type + payload) onto w.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d bytes", ErrBadFrame, len(payload))
	}
	hdr := make([]byte, 0, 9+len(payload)+8)
	hdr = binary.LittleEndian.AppendUint32(hdr, Magic)
	hdr = append(hdr, typ)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(payload)))
	hdr = append(hdr, payload...)
	crc := crc64.Checksum(hdr[4:], crcTable)
	hdr = binary.LittleEndian.AppendUint64(hdr, crc)
	_, err := w.Write(hdr)
	return err
}

// ReadFrame consumes one frame from r, verifying magic and CRC.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var head [9]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	if got := binary.LittleEndian.Uint32(head[:4]); got != Magic {
		return 0, nil, fmt.Errorf("%w: magic %#x", ErrBadFrame, got)
	}
	typ = head[4]
	n := binary.LittleEndian.Uint32(head[5:9])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: length %d", ErrBadFrame, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
	}
	var tail [8]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated crc: %v", ErrBadFrame, err)
	}
	body := make([]byte, 0, 5+len(payload))
	body = append(body, typ)
	body = binary.LittleEndian.AppendUint32(body, n)
	body = append(body, payload...)
	want := binary.LittleEndian.Uint64(tail[:])
	if got := crc64.Checksum(body, crcTable); got != want {
		return 0, nil, fmt.Errorf("%w: crc %#x want %#x", ErrBadFrame, got, want)
	}
	return typ, payload, nil
}

// Payload builders: append-style little-endian encoding.

// AppendU64 appends one u64.
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendU32 appends one u32.
func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendStr appends a u32-length-prefixed string.
func AppendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// AppendBytes appends a u32-length-prefixed byte block.
func AppendBytes(b, p []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

// AppendWords appends a u32 count plus that many u64 words.
func AppendWords(b []byte, ws []uint64) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ws)))
	for _, w := range ws {
		b = binary.LittleEndian.AppendUint64(b, w)
	}
	return b
}

// Dec is a bounds-checked payload reader; the first failure sticks.
type Dec struct {
	B   []byte
	Pos int
	Err error
}

func (d *Dec) fail() {
	if d.Err == nil {
		d.Err = fmt.Errorf("%w: truncated payload at byte %d", ErrBadFrame, d.Pos)
	}
}

// U32 reads one u32.
func (d *Dec) U32() uint32 {
	if d.Err != nil || d.Pos+4 > len(d.B) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.B[d.Pos:])
	d.Pos += 4
	return v
}

// U64 reads one u64.
func (d *Dec) U64() uint64 {
	if d.Err != nil || d.Pos+8 > len(d.B) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.B[d.Pos:])
	d.Pos += 8
	return v
}

// Byte reads one byte.
func (d *Dec) Byte() byte {
	if d.Err != nil || d.Pos+1 > len(d.B) {
		d.fail()
		return 0
	}
	v := d.B[d.Pos]
	d.Pos++
	return v
}

// Str reads a u32-length-prefixed string.
func (d *Dec) Str() string { return string(d.Block()) }

// Block reads a u32-length-prefixed byte block (aliasing the payload).
func (d *Dec) Block() []byte {
	n := int(d.U32())
	if d.Err != nil || n < 0 || d.Pos+n > len(d.B) {
		d.fail()
		return nil
	}
	v := d.B[d.Pos : d.Pos+n]
	d.Pos += n
	return v
}

// Words reads a u32 count plus that many u64 words.
func (d *Dec) Words() []uint64 {
	n := int(d.U32())
	if d.Err != nil || n < 0 || d.Pos+8*n > len(d.B) {
		d.fail()
		return nil
	}
	ws := make([]uint64, n)
	for i := range ws {
		ws[i] = binary.LittleEndian.Uint64(d.B[d.Pos:])
		d.Pos += 8
	}
	return ws
}
