package pipeproto

import (
	"bufio"
	"errors"
	"io"
)

// Child is the surface a generated simulator artifact exposes to the
// Serve loop. The codegen Serve mode emits every method on the
// generated Sim type, so the artifact's main is one Serve call.
type Child interface {
	// DesignName and Fingerprint identify the compiled design; the host
	// validates the fingerprint against its own netlist before trusting
	// the artifact.
	DesignName() string
	Fingerprint() uint64
	// Reset restores initial state.
	Reset()
	// Cycles is the simulated cycle count.
	Cycles() uint64
	// Poke/PokeWords set a named signal (false = unknown name).
	Poke(name string, v uint64) bool
	PokeWords(name string, words []uint64) bool
	// Peek/PeekWords read a named signal.
	Peek(name string) uint64
	PeekWords(name string) ([]uint64, bool)
	// PokeMem/PeekMem access memory words by memory name.
	PokeMem(name string, addr int, v uint64) bool
	PeekMem(name string, addr int) uint64
	// Step simulates n cycles; stop() and assertion failures come back
	// as errors implementing StopInfo/AssertInfo.
	Step(n int) error
	// Capture serializes the architectural state (ESNTCKP1 bytes);
	// Restore loads one, clearing stop state.
	Capture() []byte
	Restore(snapshot []byte) error
	// StateHash digests the architectural state (stats excluded) — the
	// divergence-tripwire comparison key.
	StateHash() uint64
	// StatsWords returns the flat stats counters (sim.Stats order).
	StatsWords() []uint64
	// SetOutput redirects printf output.
	SetOutput(w io.Writer)
}

// StopInfo is implemented by generated stop errors; AssertInfo by
// generated assertion errors. Serve classifies Step errors through
// these rather than concrete types, since the generated package is not
// importable here.
type StopInfo interface {
	StopInfo() (code int, cycle uint64)
}

// AssertInfo identifies assertion-failure errors.
type AssertInfo interface {
	AssertInfo() (msg string, cycle uint64)
}

// ServeOptions tunes the child-side loop.
type ServeOptions struct {
	// Chunk bounds cycles per uninterrupted Step slice; an RProgress
	// frame (the heartbeat) goes out between slices (0 = 4096).
	Chunk int
}

// outputWriter turns printf bytes into ROutput frames. All writes
// happen on the single Serve goroutine (printf fires inside Step), so
// frames never interleave.
type outputWriter struct {
	w *bufio.Writer
}

func (o outputWriter) Write(p []byte) (int, error) {
	if err := WriteFrame(o.w, ROutput, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Serve runs the child side of the protocol until the reader closes,
// TShutdown arrives, or a transport error occurs. It answers every
// command with a terminal response frame and streams progress frames
// during long steps so the host's no-heartbeat watchdog has something
// to watch.
func Serve(r io.Reader, w io.Writer, c Child, opts ServeOptions) error {
	chunk := opts.Chunk
	if chunk <= 0 {
		chunk = 4096
	}
	br := bufio.NewReaderSize(r, 1<<16)
	bw := bufio.NewWriterSize(w, 1<<16)
	c.SetOutput(outputWriter{bw})

	reply := func(typ byte, payload []byte) error {
		if err := WriteFrame(bw, typ, payload); err != nil {
			return err
		}
		return bw.Flush()
	}
	replyErr := func(msg string) error {
		return reply(RErr, AppendStr(nil, msg))
	}

	// Unprompted hello: the host validates the fingerprint before
	// sending its first command.
	hello := AppendU64(nil, c.Fingerprint())
	hello = AppendStr(hello, c.DesignName())
	if err := reply(RHello, hello); err != nil {
		return err
	}

	for {
		typ, payload, err := ReadFrame(br)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil // host went away; exit quietly
			}
			return err
		}
		d := &Dec{B: payload}
		switch typ {
		case THello:
			h := AppendU64(nil, c.Fingerprint())
			h = AppendStr(h, c.DesignName())
			err = reply(RHello, h)
		case TPoke:
			name := d.Str()
			words := d.Words()
			if d.Err != nil {
				err = replyErr(d.Err.Error())
				break
			}
			ok := false
			if len(words) == 1 {
				ok = c.Poke(name, words[0])
			} else {
				ok = c.PokeWords(name, words)
			}
			if !ok {
				err = replyErr("unknown signal " + name)
				break
			}
			err = reply(ROK, nil)
		case TPeek:
			name := d.Str()
			ws, ok := c.PeekWords(name)
			if !ok {
				err = replyErr("unknown signal " + name)
				break
			}
			err = reply(RValue, AppendWords(nil, ws))
		case TPokeMem:
			name := d.Str()
			addr := d.U64()
			v := d.U64()
			if d.Err != nil {
				err = replyErr(d.Err.Error())
				break
			}
			if !c.PokeMem(name, int(addr), v) {
				err = replyErr("bad memory write " + name)
				break
			}
			err = reply(ROK, nil)
		case TPeekMem:
			name := d.Str()
			addr := d.U64()
			err = reply(RValue, AppendWords(nil, []uint64{c.PeekMem(name, int(addr))}))
		case TStep:
			err = serveStep(c, d, chunk, bw)
		case TReset:
			c.Reset()
			err = reply(ROK, nil)
		case TCapture:
			err = reply(RState, AppendBytes(nil, c.Capture()))
		case TRestore:
			snap := d.Block()
			if d.Err != nil {
				err = replyErr(d.Err.Error())
				break
			}
			if rerr := c.Restore(snap); rerr != nil {
				err = replyErr(rerr.Error())
				break
			}
			err = reply(ROK, nil)
		case THash:
			err = reply(RValue, AppendWords(nil, []uint64{c.StateHash()}))
		case TStats:
			err = reply(RValue, AppendWords(nil, c.StatsWords()))
		case TShutdown:
			return reply(ROK, nil)
		default:
			err = replyErr("unknown command")
		}
		if err != nil {
			return err
		}
	}
}

// serveStep runs one TStep command: chunked stepping with progress
// heartbeats, terminated by an RStepDone carrying the stop/assert
// classification.
func serveStep(c Child, d *Dec, chunk int, bw *bufio.Writer) error {
	n := d.U64()
	if d.Err != nil {
		if err := WriteFrame(bw, RErr, AppendStr(nil, d.Err.Error())); err != nil {
			return err
		}
		return bw.Flush()
	}
	done := func(status byte, code int64, msg string) error {
		p := AppendU64(nil, c.Cycles())
		p = append(p, status)
		p = AppendU64(p, uint64(code))
		p = AppendStr(p, msg)
		if err := WriteFrame(bw, RStepDone, p); err != nil {
			return err
		}
		return bw.Flush()
	}
	for rem := n; rem > 0; {
		k := uint64(chunk)
		if rem < k {
			k = rem
		}
		err := c.Step(int(k))
		rem -= k
		if err != nil {
			var si StopInfo
			if errors.As(err, &si) {
				code, _ := si.StopInfo()
				return done(StepStopped, int64(code), "")
			}
			var ai AssertInfo
			if errors.As(err, &ai) {
				msg, _ := ai.AssertInfo()
				return done(StepAssert, 0, msg)
			}
			return done(StepError, 0, err.Error())
		}
		if rem > 0 {
			if err := WriteFrame(bw, RProgress, AppendU64(nil, c.Cycles())); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		}
	}
	return done(StepOK, 0, "")
}
