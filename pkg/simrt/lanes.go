package simrt

import stdbits "math/bits"

// Lane-batched simulation support: a batched simulator evaluates up to 64
// independent stimulus lanes against one compiled schedule, holding values
// in a lane-major structure-of-arrays table — word w of table slot off
// lives at tab[(off+w)*lanes + l] for lane l, so the lanes of one word are
// contiguous in memory and a per-lane activity mask selects which of them
// an instruction touches. The helpers here are the layout's runtime
// vocabulary, shared by the interpreter's batch engine and generated code.

// MaxLanes is the lane-count ceiling: one lane per bit of a LaneMask.
const MaxLanes = 64

// LaneMask is a set of simulation lanes (bit l = lane l).
type LaneMask uint64

// FullMask returns the mask selecting lanes 0..n-1.
func FullMask(n int) LaneMask {
	if n >= MaxLanes {
		return ^LaneMask(0)
	}
	return LaneMask(1)<<uint(n) - 1
}

// Has reports whether lane l is in the mask.
func (m LaneMask) Has(l int) bool { return m>>uint(l)&1 == 1 }

// Count returns the number of lanes in the mask.
func (m LaneMask) Count() int { return stdbits.OnesCount64(uint64(m)) }

// Lowest returns the smallest lane in the mask (64 when empty).
func (m LaneMask) Lowest() int { return stdbits.TrailingZeros64(uint64(m)) }

// Drop returns the mask without its lowest lane.
func (m LaneMask) Drop() LaneMask { return m & (m - 1) }

// Lanes appends the mask's lane indices to buf (ascending) and returns
// the filled slice. Callers pass a reusable backing array to keep the
// per-instruction lane walk allocation-free.
func (m LaneMask) Lanes(buf []int) []int {
	buf = buf[:0]
	for ; m != 0; m = m.Drop() {
		buf = append(buf, m.Lowest())
	}
	return buf
}

// GatherLane copies n words of lane l out of a lane-major table into the
// same slot of a contiguous table: dst[off+w] = tab[(off+w)*lanes + l].
// It is the bridge a batched evaluator uses to run a scalar
// (contiguous-layout) operation — wide arithmetic, display formatting —
// against one lane's values: gather the operands into a scalar shadow
// table, evaluate there, scatter the result back.
func GatherLane(dst, tab []uint64, off, n, lanes, l int) {
	base := off*lanes + l
	for w := 0; w < n; w++ {
		dst[off+w] = tab[base]
		base += lanes
	}
}

// ScatterLane writes n contiguous words back into lane l of a lane-major
// table: tab[(off+w)*lanes + l] = src[off+w]. The inverse of GatherLane.
func ScatterLane(tab, src []uint64, off, n, lanes, l int) {
	base := off*lanes + l
	for w := 0; w < n; w++ {
		tab[base] = src[off+w]
		base += lanes
	}
}

// BroadcastLanes replicates a contiguous table into every lane of a
// lane-major table: tab[w*lanes + l] = src[w] for l < lanes. Batched
// simulators use it to seed initial state and constants.
func BroadcastLanes(tab, src []uint64, lanes int) {
	for w, v := range src {
		row := tab[w*lanes : (w+1)*lanes]
		for l := range row {
			row[l] = v
		}
	}
}
