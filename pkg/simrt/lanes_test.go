package simrt

import (
	"reflect"
	"testing"
)

func TestLaneMask(t *testing.T) {
	if FullMask(0) != 0 {
		t.Fatalf("FullMask(0) = %x", FullMask(0))
	}
	if FullMask(3) != 0b111 {
		t.Fatalf("FullMask(3) = %x", FullMask(3))
	}
	if FullMask(64) != ^LaneMask(0) {
		t.Fatalf("FullMask(64) = %x", FullMask(64))
	}
	m := LaneMask(0b101001)
	if m.Count() != 3 || !m.Has(0) || m.Has(1) || !m.Has(3) || !m.Has(5) {
		t.Fatalf("membership wrong for %b", m)
	}
	if got := m.Lanes(make([]int, 0, 64)); !reflect.DeepEqual(got, []int{0, 3, 5}) {
		t.Fatalf("Lanes = %v", got)
	}
	if LaneMask(0).Lowest() != 64 {
		t.Fatalf("empty Lowest = %d", LaneMask(0).Lowest())
	}
	if m.Drop() != 0b101000 {
		t.Fatalf("Drop = %b", m.Drop())
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	const lanes, slots = 4, 5
	tab := make([]uint64, lanes*slots)
	for i := range tab {
		tab[i] = uint64(i) * 3
	}
	// Gather lane 2, words [1,4) into a contiguous shadow.
	shadow := make([]uint64, slots)
	GatherLane(shadow, tab, 1, 3, lanes, 2)
	for w := 1; w < 4; w++ {
		if shadow[w] != tab[w*lanes+2] {
			t.Fatalf("shadow[%d] = %d, want %d", w, shadow[w], tab[w*lanes+2])
		}
	}
	// Mutate and scatter back; only lane 2 of slots 1..3 may change.
	orig := append([]uint64(nil), tab...)
	for w := 1; w < 4; w++ {
		shadow[w] += 1000
	}
	ScatterLane(tab, shadow, 1, 3, lanes, 2)
	for i := range tab {
		w, l := i/lanes, i%lanes
		want := orig[i]
		if l == 2 && w >= 1 && w < 4 {
			want += 1000
		}
		if tab[i] != want {
			t.Fatalf("tab[%d] = %d, want %d", i, tab[i], want)
		}
	}
}

func TestBroadcastLanes(t *testing.T) {
	const lanes = 3
	src := []uint64{7, 8, 9}
	tab := make([]uint64, lanes*len(src))
	BroadcastLanes(tab, src, lanes)
	for w := range src {
		for l := 0; l < lanes; l++ {
			if tab[w*lanes+l] != src[w] {
				t.Fatalf("tab[%d][%d] = %d, want %d", w, l, tab[w*lanes+l], src[w])
			}
		}
	}
}
