// Package simrt is the runtime library for simulators emitted by the
// code generator (the Go analogue of the C++ support headers ESSENT's
// generated simulators include). Narrow (≤64-bit) operations are emitted
// inline by the generator; wide values use the helpers here, which
// operate on limb slices laid out exactly like the engine's value table.
package simrt

import (
	"math/big"

	"essent/internal/bits"
)

// Mask64 truncates x to the low w bits.
func Mask64(x uint64, w int) uint64 { return bits.Mask64(x, w) }

// Sext64 sign-extends the w-bit value x to 64 bits.
func Sext64(x uint64, w int) uint64 { return bits.Sext64(x, w) }

// B2U converts a bool to 0/1.
func B2U(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// DivU64 is the dialect's unsigned division (x/0 = 0), masked to dw.
func DivU64(a, b uint64, dw int) uint64 {
	if b == 0 {
		return 0
	}
	return Mask64(a/b, dw)
}

// RemU64 is the dialect's unsigned remainder (x%0 = x), masked to dw.
func RemU64(a, b uint64, dw int) uint64 {
	if b == 0 {
		return Mask64(a, dw)
	}
	return Mask64(a%b, dw)
}

// DivS64 is signed division over (aw, bw)-bit operands, masked to dw.
func DivS64(a uint64, aw int, b uint64, bw, dw int) uint64 {
	ia := int64(Sext64(a, aw))
	ib := int64(Sext64(b, bw))
	var q int64
	switch {
	case ib == 0:
		q = 0
	case ia == -1<<63 && ib == -1:
		q = ia
	default:
		q = ia / ib
	}
	return Mask64(uint64(q), dw)
}

// RemS64 is the signed remainder (sign of dividend), masked to dw.
func RemS64(a uint64, aw int, b uint64, bw, dw int) uint64 {
	ia := int64(Sext64(a, aw))
	ib := int64(Sext64(b, bw))
	var r int64
	switch {
	case ib == 0:
		r = ia
	case ia == -1<<63 && ib == -1:
		r = 0
	default:
		r = ia % ib
	}
	return Mask64(uint64(r), dw)
}

// Shr64 shifts a (an aw-bit value) right by n, arithmetically when
// signed, masking to dw.
func Shr64(a uint64, aw, n int, signed bool, dw int) uint64 {
	if n >= aw {
		if signed && a>>(uint(aw)-1)&1 == 1 {
			return Mask64(^uint64(0), dw)
		}
		return 0
	}
	if signed {
		return Mask64(uint64(int64(Sext64(a, aw))>>uint(n)), dw)
	}
	return Mask64(a>>uint(n), dw)
}

// Parity64 returns the xor-reduction of x.
func Parity64(x uint64) uint64 {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}

// FormatBase renders a value in the given base (printf %d/%x/%b).
func FormatBase(words []uint64, width int, signed bool, base int) string {
	v := new(big.Int)
	for i := len(words) - 1; i >= 0; i-- {
		v.Lsh(v, 64)
		v.Or(v, new(big.Int).SetUint64(words[i]))
	}
	if signed && width > 0 && v.Bit(width-1) == 1 {
		v.Sub(v, new(big.Int).Lsh(big.NewInt(1), uint(width)))
	}
	return v.Text(base)
}

// Scratch holds preallocated wide-op intermediates for one simulator
// instance.
type Scratch struct {
	a, b, r []uint64
}

// NewScratch sizes the scratch for values up to maxWords limbs.
func NewScratch(maxWords int) *Scratch {
	return &Scratch{
		a: make([]uint64, maxWords+1),
		b: make([]uint64, maxWords+1),
		r: make([]uint64, maxWords+1),
	}
}

func (s *Scratch) ext2(dst []uint64, a []uint64, aw int, sa bool,
	b []uint64, bw int, sb bool) ([]uint64, []uint64, []uint64) {
	n := len(dst)
	ea, eb, r := s.a[:n], s.b[:n], s.r[:n]
	bits.ExtendInto(ea, a, aw, sa)
	bits.ExtendInto(eb, b, bw, sb)
	return ea, eb, r
}

// Copy extends a into dst and masks to dw.
func (s *Scratch) Copy(dst, a []uint64, aw int, sa bool, dw int) {
	bits.ExtendInto(dst, a, aw, sa)
	bits.MaskInto(dst, dw)
}

// Mux selects t or f by sel, extending into dst.
func (s *Scratch) Mux(dst []uint64, sel uint64, tv []uint64, tw int, st bool,
	fv []uint64, fw int, sf bool, dw int) {
	if sel != 0 {
		s.Copy(dst, tv, tw, st, dw)
	} else {
		s.Copy(dst, fv, fw, sf, dw)
	}
}

// Add computes dst = a + b masked to dw.
func (s *Scratch) Add(dst, a []uint64, aw int, sa bool, b []uint64, bw int, sb bool, dw int) {
	ea, eb, r := s.ext2(dst, a, aw, sa, b, bw, sb)
	bits.AddInto(r, ea, eb)
	bits.MaskInto(r, dw)
	copy(dst, r)
}

// Sub computes dst = a - b masked to dw.
func (s *Scratch) Sub(dst, a []uint64, aw int, sa bool, b []uint64, bw int, sb bool, dw int) {
	ea, eb, r := s.ext2(dst, a, aw, sa, b, bw, sb)
	bits.SubInto(r, ea, eb)
	bits.MaskInto(r, dw)
	copy(dst, r)
}

// Mul computes dst = a * b masked to dw.
func (s *Scratch) Mul(dst, a []uint64, aw int, sa bool, b []uint64, bw int, sb bool, dw int) {
	ea, eb, r := s.ext2(dst, a, aw, sa, b, bw, sb)
	bits.MulInto(r, ea, eb)
	bits.MaskInto(r, dw)
	copy(dst, r)
}

// Div computes the quotient masked to dw (x/0 = 0).
func (s *Scratch) Div(dst, a []uint64, aw int, sa bool, b []uint64, bw int, dw int) {
	r := s.r[:len(dst)]
	rem := s.a[:len(dst)+1]
	if sa {
		bits.DivRemS(r, rem[:len(dst)], a, b, aw, bw)
	} else {
		bits.DivRemU(r, rem[:len(dst)], a, b)
	}
	bits.MaskInto(r, dw)
	copy(dst, r)
}

// Rem computes the remainder masked to dw (x%0 = x).
func (s *Scratch) Rem(dst, a []uint64, aw int, sa bool, b []uint64, bw int, dw int) {
	quo := s.a[:bits.Words(aw)+1]
	r := s.r[:len(dst)]
	if sa {
		bits.DivRemS(quo, r, a, b, aw, bw)
	} else {
		bits.DivRemU(quo, r, a, b)
	}
	bits.MaskInto(r, dw)
	copy(dst, r)
}

// Cmp compares extended operands: returns -1, 0, or 1.
func (s *Scratch) Cmp(a []uint64, aw int, b []uint64, bw int, signed bool) int {
	n := bits.Words(aw)
	if w := bits.Words(bw); w > n {
		n = w
	}
	ea, eb := s.a[:n], s.b[:n]
	bits.ExtendInto(ea, a, aw, signed)
	bits.ExtendInto(eb, b, bw, signed)
	return bits.Cmp(ea, eb, signed)
}

// Shl computes dst = a << n masked to dw.
func (s *Scratch) Shl(dst, a []uint64, n, dw int) {
	r := s.r[:len(dst)]
	bits.ShlInto(r, a, n, dw)
	copy(dst, r)
}

// Shr computes dst = a >> n (arithmetic when signed) masked to dw.
func (s *Scratch) Shr(dst, a []uint64, n, aw int, signed bool, dw int) {
	r := s.r[:len(dst)]
	bits.ShrInto(r, a, n, aw, signed, dw)
	copy(dst, r)
}

// Not computes dst = ^a masked to dw.
func (s *Scratch) Not(dst, a []uint64, dw int) {
	r := s.r[:len(dst)]
	bits.NotInto(r, a, dw)
	copy(dst, r)
}

// Logic computes dst = a OP b (op: 0=and, 1=or, 2=xor) masked to dw.
func (s *Scratch) Logic(dst []uint64, op int, a []uint64, aw int, sa bool,
	b []uint64, bw int, sb bool, dw int) {
	ea, eb, r := s.ext2(dst, a, aw, sa, b, bw, sb)
	switch op {
	case 0:
		bits.AndInto(r, ea, eb)
	case 1:
		bits.OrInto(r, ea, eb)
	default:
		bits.XorInto(r, ea, eb)
	}
	bits.MaskInto(r, dw)
	copy(dst, r)
}

// AndR reduces a over w bits.
func AndR(a []uint64, w int) uint64 { return bits.AndR(a, w) }

// OrR reduces a with or.
func OrR(a []uint64) uint64 { return bits.OrR(a) }

// XorR reduces a with xor.
func XorR(a []uint64) uint64 { return bits.XorR(a) }

// Cat concatenates a (high) and b (low) into dst.
func (s *Scratch) Cat(dst, a []uint64, aw int, b []uint64, bw int) {
	r := s.r[:len(dst)]
	bits.CatInto(r, a, b, aw, bw)
	copy(dst, r)
}

// Bits extracts [hi, lo] of a into dst.
func (s *Scratch) Bits(dst, a []uint64, hi, lo int) {
	r := s.r[:len(dst)]
	bits.ExtractInto(r, a, hi, lo)
	copy(dst, r)
}

// Neg computes dst = -a masked to dw.
func (s *Scratch) Neg(dst, a []uint64, aw int, sa bool, dw int) {
	n := len(dst)
	ea, r := s.a[:n], s.r[:n]
	bits.ExtendInto(ea, a, aw, sa)
	bits.NegInto(r, ea)
	bits.MaskInto(r, dw)
	copy(dst, r)
}

// Eq reports whether extended operands are equal.
func (s *Scratch) Eq(a []uint64, aw int, sa bool, b []uint64, bw int, sb bool) bool {
	n := bits.Words(aw)
	if w := bits.Words(bw); w > n {
		n = w
	}
	ea, eb := s.a[:n], s.b[:n]
	bits.ExtendInto(ea, a, aw, sa)
	bits.ExtendInto(eb, b, bw, sb)
	return bits.Equal(ea, eb)
}

// EqualWords compares equally-sized slices (change detection).
func EqualWords(a, b []uint64) bool { return bits.Equal(a, b) }

// MemRead copies memory entry addr into dst (zeroing when out of range).
func MemRead(dst, mem []uint64, nw int, depth, addr uint64) {
	if addr < depth {
		base := int(addr) * nw
		copy(dst, mem[base:base+nw])
		return
	}
	for i := range dst {
		dst[i] = 0
	}
}

// FormatValue renders a value for printf (%d semantics).
func FormatValue(words []uint64, width int, signed bool) string {
	v := new(big.Int)
	for i := len(words) - 1; i >= 0; i-- {
		v.Lsh(v, 64)
		v.Or(v, new(big.Int).SetUint64(words[i]))
	}
	if signed && width > 0 && v.Bit(width-1) == 1 {
		v.Sub(v, new(big.Int).Lsh(big.NewInt(1), uint(width)))
	}
	return v.String()
}
