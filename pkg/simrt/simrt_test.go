package simrt

import (
	"math/rand"
	"testing"

	"essent/internal/bits"
)

func TestNarrowHelpers(t *testing.T) {
	if B2U(true) != 1 || B2U(false) != 0 {
		t.Fatal("B2U")
	}
	if DivU64(100, 7, 8) != 14 || DivU64(5, 0, 8) != 0 {
		t.Fatal("DivU64")
	}
	if RemU64(100, 7, 8) != 2 || RemU64(5, 0, 8) != 5 {
		t.Fatal("RemU64")
	}
	// -100 / 7 = -14 → masked to 8 bits.
	if got := DivS64(Mask64(uint64(0x9C), 8), 8, 7, 8, 9); got != Mask64(^uint64(13), 9) {
		t.Fatalf("DivS64 = %#x", got)
	}
	if DivS64(5, 8, 0, 8, 9) != 0 {
		t.Fatal("DivS64 by zero")
	}
	if RemS64(5, 8, 0, 8, 8) != 5 {
		t.Fatal("RemS64 by zero")
	}
	// Arithmetic shift: -8 >> 1 = -4 in 4 bits.
	if got := Shr64(0b1000, 4, 1, true, 4); got != 0b1100 {
		t.Fatalf("Shr64 arith = %#b", got)
	}
	if Shr64(0b1000, 4, 9, true, 4) != 0xF {
		t.Fatal("overshift signed should sign-fill")
	}
	if Shr64(0b1000, 4, 9, false, 4) != 0 {
		t.Fatal("overshift unsigned should zero")
	}
	if Parity64(0b1011) != 1 || Parity64(0b11) != 0 {
		t.Fatal("Parity64")
	}
}

func TestFormatBase(t *testing.T) {
	if got := FormatBase([]uint64{255}, 8, false, 16); got != "ff" {
		t.Fatalf("hex: %s", got)
	}
	if got := FormatBase([]uint64{0xFF}, 8, true, 10); got != "-1" {
		t.Fatalf("signed: %s", got)
	}
	if got := FormatBase([]uint64{5}, 8, false, 2); got != "101" {
		t.Fatalf("bin: %s", got)
	}
}

func TestScratchOpsAgainstBits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sc := NewScratch(4)
	const aw, bw, dw = 100, 90, 101
	na, nb, nd := bits.Words(aw), bits.Words(bw), bits.Words(dw)
	a := make([]uint64, na)
	b := make([]uint64, nb)
	dst := make([]uint64, nd)
	want := make([]uint64, nd)
	ea := make([]uint64, nd)
	eb := make([]uint64, nd)
	for trial := 0; trial < 200; trial++ {
		for i := range a {
			a[i] = rng.Uint64()
		}
		for i := range b {
			b[i] = rng.Uint64()
		}
		bits.MaskInto(a, aw)
		bits.MaskInto(b, bw)

		sc.Add(dst, a, aw, false, b, bw, false, dw)
		bits.ExtendInto(ea, a, aw, false)
		bits.ExtendInto(eb, b, bw, false)
		bits.AddInto(want, ea, eb)
		bits.MaskInto(want, dw)
		if !bits.Equal(dst, want) {
			t.Fatalf("Add mismatch")
		}

		sc.Logic(dst, 2, a, aw, false, b, bw, false, dw)
		bits.XorInto(want, ea, eb)
		bits.MaskInto(want, dw)
		if !bits.Equal(dst, want) {
			t.Fatal("Logic xor mismatch")
		}

		if got := sc.Cmp(a, aw, b, bw, false); got != bits.Cmp(ea, eb, false) {
			t.Fatal("Cmp mismatch")
		}
		if sc.Eq(a, aw, false, b, bw, false) != bits.Equal(ea, eb) {
			t.Fatal("Eq mismatch")
		}
	}
}

func TestMemRead(t *testing.T) {
	mem := []uint64{10, 11, 20, 21, 30, 31} // 3 entries × 2 words
	dst := make([]uint64, 2)
	MemRead(dst, mem, 2, 3, 1)
	if dst[0] != 20 || dst[1] != 21 {
		t.Fatalf("MemRead = %v", dst)
	}
	MemRead(dst, mem, 2, 3, 9)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatal("out-of-range read should zero")
	}
}

func TestScratchMux(t *testing.T) {
	sc := NewScratch(4)
	dst := make([]uint64, 2)
	tv := []uint64{0xAAAA}
	fv := []uint64{0x5555}
	sc.Mux(dst, 1, tv, 16, false, fv, 16, false, 80)
	if dst[0] != 0xAAAA {
		t.Fatal("mux true arm")
	}
	sc.Mux(dst, 0, tv, 16, false, fv, 16, false, 80)
	if dst[0] != 0x5555 {
		t.Fatal("mux false arm")
	}
}

func TestScratchShiftNotNeg(t *testing.T) {
	sc := NewScratch(4)
	a := []uint64{0xFF, 0}
	dst := make([]uint64, 2)
	sc.Shl(dst, a, 64, 128)
	if dst[0] != 0 || dst[1] != 0xFF {
		t.Fatalf("Shl: %v", dst)
	}
	sc.Shr(dst, dst, 64, 128, false, 128)
	if dst[0] != 0xFF || dst[1] != 0 {
		t.Fatalf("Shr: %v", dst)
	}
	sc.Not(dst, a, 72)
	if dst[0] != ^uint64(0xFF) || dst[1] != 0xFF {
		t.Fatalf("Not: %#x", dst)
	}
	sc.Neg(dst, []uint64{1, 0}, 72, false, 73)
	bits.MaskInto(dst, 73)
	if dst[0] != ^uint64(0) {
		t.Fatalf("Neg: %#x", dst)
	}
}
