// A UART transmitter in the supported Verilog subset: a mostly-idle FSM
// with a baud prescaler — the low-activity shape the paper targets.
module uart_tx(
  input clk,
  input rst,
  input start,
  input [7:0] data,
  output tx,
  output busy
);
  reg [1:0] state;       // 0 idle, 1 start bit, 2 data bits, 3 stop bit
  reg [7:0] shifter;
  reg [2:0] bitidx;
  reg [7:0] baud;
  reg txr;

  wire tick = baud == 8'd103;   // ~9600 baud at a notional 1 MHz

  always @(posedge clk) begin
    if (rst) begin
      state <= 2'd0;
      baud <= 8'd0;
      txr <= 1'b1;
      bitidx <= 3'd0;
    end else begin
      baud <= tick ? 8'd0 : baud + 8'd1;
      case (state)
        2'd0: begin
          txr <= 1'b1;
          if (start) begin
            shifter <= data;
            state <= 2'd1;
          end
        end
        2'd1: begin
          if (tick) begin
            txr <= 1'b0;      // start bit
            state <= 2'd2;
            bitidx <= 3'd0;
          end
        end
        2'd2: begin
          if (tick) begin
            txr <= shifter[0];
            shifter <= {1'b0, shifter[7:1]};
            bitidx <= bitidx + 3'd1;
            if (bitidx == 3'd7)
              state <= 2'd3;
          end
        end
        default: begin
          if (tick) begin
            txr <= 1'b1;      // stop bit
            state <= 2'd0;
          end
        end
      endcase
    end
  end

  assign tx = txr;
  assign busy = state != 2'd0;
endmodule
