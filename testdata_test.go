package essent

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The testdata corpus: realistic designs that must compile and behave on
// every engine.

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func allEngines() []Engine {
	return []Engine{EngineEventDriven, EngineBaseline, EngineFullCycleOpt,
		EngineESSENT, EngineESSENTParallel}
}

func TestGCDTestdata(t *testing.T) {
	src := readTestdata(t, "gcd.fir")
	for _, engine := range allEngines() {
		s, err := Compile(src, Options{Engine: engine})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		must := func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		}
		must(s.Poke("a", 1071))
		must(s.Poke("b", 462))
		must(s.Poke("start", 1))
		must(s.Step(1))
		must(s.Poke("start", 0))
		deadline := 500
		for i := 0; i < deadline; i++ {
			must(s.Step(1))
			if d, _ := s.Peek("done"); d == 1 {
				break
			}
		}
		res, _ := s.Peek("result")
		if res != 21 {
			t.Fatalf("%v: gcd(1071,462) = %d, want 21", engine, res)
		}
	}
}

func TestFIFOTestdata(t *testing.T) {
	src := readTestdata(t, "fifo.fir")
	for _, engine := range []Engine{EngineBaseline, EngineESSENT} {
		s, err := Compile(src, Options{Engine: engine})
		if err != nil {
			t.Fatalf("%v: %v", engine, err)
		}
		must := func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		}
		// Push 5 values.
		must(s.Poke("push", 1))
		for i := 1; i <= 5; i++ {
			must(s.Poke("din", uint64(100+i)))
			must(s.Step(1))
		}
		must(s.Poke("push", 0))
		must(s.Step(1))
		if c, _ := s.Peek("count"); c != 5 {
			t.Fatalf("%v: count = %d, want 5", engine, c)
		}
		// Pop them back in order. dout is sampled pre-edge: the value
		// observed after a step is the one the read pointer selected
		// during that cycle.
		must(s.Poke("pop", 1))
		for i := 1; i <= 5; i++ {
			must(s.Step(1))
			v, _ := s.Peek("dout")
			if v != uint64(100+i) {
				t.Fatalf("%v: pop %d = %d, want %d", engine, i, v, 100+i)
			}
		}
		must(s.Poke("pop", 0))
		must(s.Step(1))
		if e, _ := s.Peek("empty"); e != 1 {
			t.Fatalf("%v: fifo should be empty", engine)
		}
		// Fill to the brim and verify full.
		must(s.Poke("push", 1))
		must(s.Poke("din", 7))
		must(s.Step(16))
		must(s.Poke("push", 0))
		must(s.Step(1))
		if f, _ := s.Peek("full"); f != 1 {
			t.Fatalf("%v: fifo should be full", engine)
		}
	}
}

func TestUARTTestdata(t *testing.T) {
	src := readTestdata(t, "uart_tx.v")
	s, err := CompileVerilog(src, "uart_tx", Options{Engine: EngineESSENT})
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Poke("rst", 1))
	must(s.Step(2))
	must(s.Poke("rst", 0))
	must(s.Step(2))
	// Idle line is high and not busy.
	if tx, _ := s.Peek("tx"); tx != 1 {
		t.Fatal("idle tx should be high")
	}
	// Transmit 0x55 and sample the line at each baud tick.
	must(s.Poke("data", 0x55))
	must(s.Poke("start", 1))
	must(s.Step(1))
	must(s.Poke("start", 0))
	var bits []uint64
	lastBusy := uint64(1)
	for cycle := 0; cycle < 5000; cycle++ {
		must(s.Step(1))
		baud, _ := s.Peek("baud")
		if baud == 0 { // just ticked
			tx, _ := s.Peek("tx")
			bits = append(bits, tx)
		}
		lastBusy, _ = s.Peek("busy")
		// Keep sampling one extra tick past busy so the stop bit lands.
		if lastBusy == 0 && len(bits) >= 11 {
			break
		}
	}
	if lastBusy != 0 {
		t.Fatalf("transmitter stuck busy (bits %v)", bits)
	}
	// Expect start(0), LSB-first 0x55 = 1,0,1,0,1,0,1,0 then stop(1)
	want := []uint64{0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	found := false
	for i := 0; i+len(want) <= len(bits); i++ {
		match := true
		for j, w := range want {
			if bits[i+j] != w {
				match = false
				break
			}
		}
		if match {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("frame not found in sampled bits %v", bits)
	}
	// Low activity while idle: ESSENT should mostly sleep now.
	st0 := s.Stats().OpsEvaluated
	must(s.Step(2000))
	st1 := s.Stats().OpsEvaluated
	perCycle := float64(st1-st0) / 2000
	if perCycle > 20 {
		t.Fatalf("idle UART evaluates %.1f ops/cycle — not sleeping", perCycle)
	}
}

func TestTestdataStopsOnAllFiles(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		src := readTestdata(t, name)
		var s *Sim
		var cerr error
		if strings.HasSuffix(name, ".v") {
			s, cerr = CompileVerilog(src, "", Options{})
		} else {
			s, cerr = Compile(src, Options{})
		}
		if cerr != nil {
			t.Fatalf("%s: %v", name, cerr)
		}
		if err := s.Step(100); err != nil {
			var stopped *StoppedError
			if !errors.As(err, &stopped) {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}
