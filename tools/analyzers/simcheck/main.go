// Command simcheck is the repository's custom static checker. It
// enforces three invariants the ordinary type checker cannot see (run
// in CI alongside go vet and staticcheck):
//
//  1. engine-verify — every exported engine constructor in
//     internal/sim (New*) must reach verify.Enforce through
//     package-local calls, so no engine can be built without the
//     static verifier having a say.
//  2. stats-write — outside internal/sim, the *sim.Stats returned by
//     Simulator.Stats() is read-only: callers comparing or printing
//     work counters must not reset or edit them (that asymmetry broke
//     lockstep Stats comparisons before the engines owned all resets).
//  3. slot-index — outside internal/sim, no []uint64 may be indexed by
//     a netlist.SignalID (directly or through an integer conversion):
//     slot-table layout is the engines' private contract, everyone
//     else goes through Peek/PeekWide.
//
// Usage: go run ./tools/analyzers/simcheck [packages...] (default ./...).
// Builds the module's packages from source against `go list -export`
// data — no dependencies outside the standard library.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

const (
	simPath     = "essent/internal/sim"
	netlistPath = "essent/internal/netlist"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := run(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simcheck:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simcheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("simcheck: ok")
}

// listPkg is the subset of `go list -json` output simcheck consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

func run(patterns []string) ([]string, error) {
	// Two passes: the target set (what we lint), then targets+deps with
	// export data (what the type checker imports against).
	targets, err := goList(patterns, false)
	if err != nil {
		return nil, err
	}
	all, err := goList(patterns, true)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)

	var findings []string
	for _, p := range targets {
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, 0)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Uses:  map[*ast.Ident]types.Object{},
			Types: map[ast.Expr]types.TypeAndValue{},
		}
		conf := types.Config{Importer: imp}
		if _, err := conf.Check(p.ImportPath, fset, files, info); err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
		}
		findings = append(findings, Check(p.ImportPath, fset, files, info)...)
	}
	return findings, nil
}

func goList(patterns []string, deps bool) ([]listPkg, error) {
	args := []string{"list", "-json=ImportPath,Dir,Export,GoFiles,Standard"}
	if deps {
		args = append(args, "-export", "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Check runs every simcheck rule over one type-checked package and
// returns the findings, "file:line: [rule] message" formatted.
func Check(pkgPath string, fset *token.FileSet, files []*ast.File,
	info *types.Info) []string {
	var findings []string
	report := func(pos token.Pos, rule, msg string) {
		findings = append(findings, fmt.Sprintf("%s: [%s] %s",
			fset.Position(pos), rule, msg))
	}
	if pkgPath == simPath {
		checkEngineVerify(files, info, report)
		return findings
	}
	checkStatsWrite(files, info, report)
	checkSlotIndex(files, info, report)
	return findings
}

// checkEngineVerify: every exported New* function must reach a
// verify.Enforce call through package-local calls. Reachability is by
// callee name (functions and methods pooled), an over-approximation
// that can only hide a miss when an unrelated same-named callee calls
// Enforce — acceptable for an existence check.
func checkEngineVerify(files []*ast.File, info *types.Info,
	report func(token.Pos, string, string)) {
	const enforce = "verify.Enforce!"
	calls := map[string][]string{}
	var ctors []*ast.FuncDecl
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var out []string
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					out = append(out, fun.Name)
				case *ast.SelectorExpr:
					if x, ok := fun.X.(*ast.Ident); ok {
						if pn, ok := info.Uses[x].(*types.PkgName); ok &&
							pn.Imported().Path() == "essent/internal/verify" &&
							fun.Sel.Name == "Enforce" {
							out = append(out, enforce)
							return true
						}
					}
					out = append(out, fun.Sel.Name)
				}
				return true
			})
			calls[fd.Name.Name] = append(calls[fd.Name.Name], out...)
			if fd.Recv == nil && strings.HasPrefix(fd.Name.Name, "New") &&
				ast.IsExported(fd.Name.Name) {
				ctors = append(ctors, fd)
			}
		}
	}
	for _, fd := range ctors {
		seen := map[string]bool{}
		work := []string{fd.Name.Name}
		found := false
		for len(work) > 0 && !found {
			name := work[len(work)-1]
			work = work[:len(work)-1]
			if seen[name] {
				continue
			}
			seen[name] = true
			for _, callee := range calls[name] {
				if callee == enforce {
					found = true
					break
				}
				if _, local := calls[callee]; local && !seen[callee] {
					work = append(work, callee)
				}
			}
		}
		if !found {
			report(fd.Pos(), "engine-verify", fmt.Sprintf(
				"engine constructor %s never reaches verify.Enforce", fd.Name.Name))
		}
	}
}

// isNamed reports whether t (or its pointee) is the named type path.Name.
func isNamed(t types.Type, path, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// checkStatsWrite flags writes through a sim.Stats outside internal/sim:
// assignments to *p or p.Field, and ++/-- on counters.
func checkStatsWrite(files []*ast.File, info *types.Info,
	report func(token.Pos, string, string)) {
	// Only writes through a *sim.Stats count: a value copy (st := *s.
	// Stats()) is the caller's own and freely editable.
	isStatsPtr := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok {
			return false
		}
		_, ptr := tv.Type.(*types.Pointer)
		return ptr && isNamed(tv.Type, simPath, "Stats")
	}
	isStatsLV := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.StarExpr:
			return isStatsPtr(e.X)
		case *ast.SelectorExpr:
			return isStatsPtr(e.X)
		}
		return false
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if isStatsLV(lhs) {
						report(lhs.Pos(), "stats-write",
							"sim.Stats is engine-owned and read-only outside internal/sim")
					}
				}
			case *ast.IncDecStmt:
				if isStatsLV(n.X) {
					report(n.X.Pos(), "stats-write",
						"sim.Stats is engine-owned and read-only outside internal/sim")
				}
			}
			return true
		})
	}
}

// checkSlotIndex flags []uint64 indexed by a netlist.SignalID (directly
// or through an integer conversion of one) outside internal/sim.
func checkSlotIndex(files []*ast.File, info *types.Info,
	report func(token.Pos, string, string)) {
	isSignalID := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if ok && isNamed(tv.Type, netlistPath, "SignalID") {
			return true
		}
		// Unwrap one integer conversion: int(id), uint32(id), ...
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return false
		}
		if ftv, ok := info.Types[call.Fun]; !ok || !ftv.IsType() {
			return false
		}
		atv, ok := info.Types[call.Args[0]]
		return ok && isNamed(atv.Type, netlistPath, "SignalID")
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			idx, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			xt, ok := info.Types[idx.X]
			if !ok {
				return true
			}
			sl, ok := xt.Type.Underlying().(*types.Slice)
			if !ok {
				return true
			}
			bt, ok := sl.Elem().Underlying().(*types.Basic)
			if !ok || bt.Kind() != types.Uint64 {
				return true
			}
			if isSignalID(idx.Index) {
				report(idx.Pos(), "slot-index",
					"[]uint64 indexed by netlist.SignalID: raw slot layout is "+
						"internal/sim's contract, use Peek/PeekWide")
			}
			return true
		})
	}
}
