package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// mapImporter resolves imports from already-checked in-memory packages.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("test importer: unknown package %q", path)
}

// checkSrc type-checks one synthetic package and runs the simcheck
// rules over it.
func checkSrc(t *testing.T, imp mapImporter, path, src string) ([]string, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Uses:  map[*ast.Ident]types.Object{},
		Types: map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	return Check(path, fset, []*ast.File{f}, info), pkg
}

// deps builds the synthetic netlist/sim/verify packages the rules match
// against by import path.
func deps(t *testing.T) mapImporter {
	t.Helper()
	imp := mapImporter{}
	_, nl := checkSrc(t, imp, netlistPath, `
package netlist
type SignalID int32
const NoSignal SignalID = -1
`)
	imp[netlistPath] = nl
	_, vp := checkSrc(t, imp, "essent/internal/verify", `
package verify
type Mode int
type Diagnostic struct{}
func Enforce(m Mode, d []Diagnostic, w any) error { return nil }
`)
	imp["essent/internal/verify"] = vp
	return imp
}

func wantRules(t *testing.T, findings []string, rules ...string) {
	t.Helper()
	if len(findings) != len(rules) {
		t.Fatalf("got %d finding(s), want %d:\n%s",
			len(findings), len(rules), strings.Join(findings, "\n"))
	}
	for i, r := range rules {
		if !strings.Contains(findings[i], "["+r+"]") {
			t.Fatalf("finding %d = %q, want rule %s", i, findings[i], r)
		}
	}
}

// TestEngineVerifyRule: a constructor reaching Enforce transitively is
// clean; one that never does is flagged.
func TestEngineVerifyRule(t *testing.T) {
	imp := deps(t)
	findings, simPkg := checkSrc(t, imp, simPath, `
package sim
import "essent/internal/verify"
type Stats struct{ Cycles uint64 }
type CCSS struct{ st Stats }
func (c *CCSS) Stats() *Stats { return &c.st }
func NewCCSS() (*CCSS, error) {
	if err := verify.Enforce(0, nil, nil); err != nil {
		return nil, err
	}
	return &CCSS{}, nil
}
func New() (*CCSS, error) { return NewCCSS() }
func NewRogue() (*CCSS, error) { return &CCSS{}, nil }
`)
	imp[simPath] = simPkg
	wantRules(t, findings, "engine-verify")
	if !strings.Contains(findings[0], "NewRogue") {
		t.Fatalf("wrong constructor flagged: %q", findings[0])
	}
}

// TestStatsAndSlotRules: outside internal/sim, Stats writes and
// SignalID-indexed []uint64 reads are flagged; read-only uses and
// indexing other tables are not.
func TestStatsAndSlotRules(t *testing.T) {
	imp := deps(t)
	_, simPkg := checkSrc(t, imp, simPath, `
package sim
import "essent/internal/verify"
type Stats struct{ Cycles uint64 }
type CCSS struct{ st Stats }
func (c *CCSS) Stats() *Stats { return &c.st }
func New() (*CCSS, error) {
	if err := verify.Enforce(0, nil, nil); err != nil {
		return nil, err
	}
	return &CCSS{}, nil
}
`)
	imp[simPath] = simPkg
	findings, _ := checkSrc(t, imp, "essent/internal/consumer", `
package consumer
import (
	"essent/internal/netlist"
	"essent/internal/sim"
)
func bad(s *sim.CCSS, table []uint64, id netlist.SignalID) uint64 {
	*s.Stats() = sim.Stats{}        // write through the pointer
	s.Stats().Cycles = 0            // field write
	s.Stats().Cycles++              // counter write
	_ = table[id]                   // direct SignalID index
	return table[int(id)]           // converted SignalID index
}
func good(s *sim.CCSS, partOf []int, id netlist.SignalID) uint64 {
	st := *s.Stats()                // value copy is fine
	st.Cycles = 0                   // editing the copy is fine
	_ = partOf[int(id)]             // non-slot table is fine
	return st.Cycles
}
`)
	wantRules(t, findings, "stats-write", "stats-write", "stats-write",
		"slot-index", "slot-index")
}
